package telemetry

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"
)

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	return data
}

// TestSpanTree checks the swap-on-start / restore-on-end discipline:
// nested StartSpan calls build a parent chain, End restores the
// previously active span, and Child spans never capture activation.
func TestSpanTree(t *testing.T) {
	tr := NewTrace()
	root := tr.StartSpan(nil, "estimate")
	if got := tr.Active(); got != root {
		t.Fatalf("active after root start = %v, want root", got)
	}

	stage1 := tr.StartSpan(nil, "stage1")
	if got := tr.Active(); got != stage1 {
		t.Fatalf("active = %v, want stage1", got)
	}
	side := stage1.Child("fit")
	if got := tr.Active(); got != stage1 {
		t.Fatal("Child must not activate")
	}
	side.End()
	stage1.End()
	if got := tr.Active(); got != root {
		t.Fatal("End(stage1) must restore root as active")
	}
	stage2 := tr.StartSpan(nil, "stage2")
	stage2.End()
	root.End()
	if got := tr.Active(); got != nil {
		t.Fatalf("active after all ends = %v, want nil", got)
	}

	snaps := tr.Snapshot()
	if len(snaps) != 4 {
		t.Fatalf("got %d spans, want 4", len(snaps))
	}
	byName := map[string]SpanSnapshot{}
	for _, s := range snaps {
		byName[s.Name] = s
	}
	if byName["estimate"].ParentID != 0 {
		t.Fatalf("estimate parent = %d, want 0", byName["estimate"].ParentID)
	}
	for _, name := range []string{"stage1", "stage2"} {
		if byName[name].ParentID != byName["estimate"].ID {
			t.Fatalf("%s parent = %d, want estimate (%d)", name, byName[name].ParentID, byName["estimate"].ID)
		}
	}
	if byName["fit"].ParentID != byName["stage1"].ID {
		t.Fatalf("fit parent = %d, want stage1 (%d)", byName["fit"].ParentID, byName["stage1"].ID)
	}
	for _, s := range snaps {
		if s.Running {
			t.Fatalf("span %s still running after End", s.Name)
		}
		if s.DurUS < 0 {
			t.Fatalf("span %s negative duration %d", s.Name, s.DurUS)
		}
	}
}

// TestSpanEndIdempotent checks that the first End wins and a second End
// does not clobber the recorded end time or the active chain.
func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTrace()
	a := tr.StartSpan(nil, "a")
	b := tr.StartSpan(nil, "b")
	b.End()
	first := b.end.Load()
	time.Sleep(2 * time.Millisecond)
	b.End()
	if b.end.Load() != first {
		t.Fatal("second End overwrote the end time")
	}
	if tr.Active() != a {
		t.Fatal("double End corrupted the active chain")
	}
	a.End()
}

// TestSpanAgg checks aggregate counts and seconds, including handle
// reuse by name.
func TestSpanAgg(t *testing.T) {
	tr := NewTrace()
	s := tr.StartSpan(nil, "stage2")
	agg := s.Agg("spice.solve")
	agg.Observe(0.5)
	agg.Observe(0.25)
	s.Agg("spice.solve").Add(3) // same aggregate, by name
	s.Agg("probes").Add(10)
	s.End()

	if got := agg.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := agg.Seconds(); got != 0.75 {
		t.Fatalf("seconds = %v, want 0.75", got)
	}
	snap := tr.Snapshot()[0]
	if len(snap.Aggs) != 2 {
		t.Fatalf("got %d aggs, want 2", len(snap.Aggs))
	}
	if snap.Aggs[0].Name != "spice.solve" || snap.Aggs[0].Count != 5 || snap.Aggs[0].Seconds != 0.75 {
		t.Fatalf("agg snapshot = %+v", snap.Aggs[0])
	}
	if snap.Aggs[1].Name != "probes" || snap.Aggs[1].Count != 10 {
		t.Fatalf("agg snapshot = %+v", snap.Aggs[1])
	}
}

// TestTraceWriteJSONL checks the span-per-line export parses back.
func TestTraceWriteJSONL(t *testing.T) {
	tr := NewTrace()
	root := tr.StartSpan(nil, "run")
	root.SetAttr("method", "g-s")
	child := tr.StartSpan(nil, "chain")
	child.Agg("update").Add(7)
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []SpanSnapshot
	for sc.Scan() {
		var s SpanSnapshot
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, s)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if lines[0].Name != "run" || lines[0].Attrs["method"] != "g-s" {
		t.Fatalf("root line = %+v", lines[0])
	}
	if lines[1].Name != "chain" || len(lines[1].Aggs) != 1 || lines[1].Aggs[0].Count != 7 {
		t.Fatalf("chain line = %+v", lines[1])
	}
}

// TestTraceWriteChromeTrace checks the Chrome trace-event export: a
// traceEvents array of complete events whose tids encode tree depth and
// whose args carry attrs and aggregates.
func TestTraceWriteChromeTrace(t *testing.T) {
	tr := NewTrace()
	root := tr.StartSpan(nil, "estimate")
	root.SetAttr("metric", "readcurrent")
	stage := tr.StartSpan(nil, "stage2")
	stage.Agg("chunk").Observe(0.001)
	stage.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   *int64         `json:"ts"`
			Dur  int64          `json:"dur"`
			PID  int            `json:"pid"`
			TID  int64          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v\n%s", err, buf.String())
	}
	if out.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", out.DisplayTimeUnit)
	}
	if len(out.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(out.TraceEvents))
	}
	for _, ev := range out.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %s ph = %q, want X", ev.Name, ev.Ph)
		}
		if ev.TS == nil {
			t.Fatalf("event %s missing ts", ev.Name)
		}
		if ev.Dur < 1 {
			t.Fatalf("event %s dur = %d, want >= 1", ev.Name, ev.Dur)
		}
	}
	byName := map[string]int64{}
	for _, ev := range out.TraceEvents {
		byName[ev.Name] = ev.TID
	}
	if byName["estimate"] != 0 || byName["stage2"] != 1 {
		t.Fatalf("tids = %v, want estimate:0 stage2:1", byName)
	}
	for _, ev := range out.TraceEvents {
		if ev.Name == "stage2" {
			if ev.Args["chunk_count"] != float64(1) {
				t.Fatalf("stage2 args = %v", ev.Args)
			}
		}
	}
}

// TestTraceSnapshotRunning checks that a live trace exports running
// spans with Running=true instead of blocking or dropping them.
func TestTraceSnapshotRunning(t *testing.T) {
	tr := NewTrace()
	tr.StartSpan(nil, "run")
	snaps := tr.Snapshot()
	if len(snaps) != 1 || !snaps[0].Running {
		t.Fatalf("snapshot = %+v, want one running span", snaps)
	}
}

// TestSpanNilSafety drives the whole span API through nil receivers —
// every call must no-op.
func TestSpanNilSafety(t *testing.T) {
	var tr *Trace
	s := tr.StartSpan(nil, "x")
	if s != nil {
		t.Fatal("nil trace returned non-nil span")
	}
	s.End()
	s.SetAttr("k", 1)
	a := s.Agg("a")
	a.Observe(1)
	a.Add(1)
	if a.Count() != 0 || a.Seconds() != 0 {
		t.Fatal("nil agg returned non-zero aggregates")
	}
	if tr.Active() != nil || tr.Snapshot() != nil {
		t.Fatal("nil trace leaked state")
	}
	var reg *Registry
	if reg.StartSpan("x") != nil || reg.ActiveSpan() != nil || reg.TraceData() != nil {
		t.Fatal("nil registry leaked span state")
	}
	reg.SetTrace(NewTrace())

	// Enabled registry without a trace: still all no-ops.
	reg = New()
	if reg.StartSpan("x") != nil || reg.ActiveSpan() != nil {
		t.Fatal("trace-less registry returned a span")
	}
}

// TestSpanContext checks the context plumbing: nil spans leave the
// context untouched, carried spans parent their stage children, and the
// context-derived child becomes the trace's active span.
func TestSpanContext(t *testing.T) {
	ctx := context.Background()
	if got := ContextWithSpan(ctx, nil); got != ctx {
		t.Fatal("ContextWithSpan(nil) must return ctx unchanged")
	}
	if SpanFromContext(ctx) != nil {
		t.Fatal("empty context carried a span")
	}

	// Disabled everywhere: same ctx back, nil span.
	ctx2, s := StartSpan(ctx, nil, "stage")
	if ctx2 != ctx || s != nil {
		t.Fatal("disabled StartSpan must return (ctx, nil)")
	}

	reg := New()
	tr := NewTrace()
	reg.SetTrace(tr)
	ctx2, root := StartSpan(ctx, reg, "estimate")
	if root == nil || SpanFromContext(ctx2) != root {
		t.Fatal("root span not carried in context")
	}
	ctx3, stage := StartSpan(ctx2, reg, "stage1")
	if stage == nil || SpanFromContext(ctx3) != stage {
		t.Fatal("stage span not carried in context")
	}
	if tr.Active() != stage {
		t.Fatal("ctx-derived stage span must become the trace's active span")
	}
	if reg.ActiveSpan() != stage {
		t.Fatal("Registry.ActiveSpan must see the ctx-derived stage span")
	}
	stage.End()
	if tr.Active() != root {
		t.Fatal("ending the stage must restore the root as active")
	}
	root.End()

	snaps := tr.Snapshot()
	if len(snaps) != 2 || snaps[1].ParentID != snaps[0].ID {
		t.Fatalf("snapshot = %+v, want stage parented under estimate", snaps)
	}
}

// TestSpanDisabledZeroAlloc pins the acceptance criterion: with tracing
// disabled, the instrumented path (StartSpan + attrs + aggs + End)
// allocates nothing.
func TestSpanDisabledZeroAlloc(t *testing.T) {
	ctx := context.Background()
	reg := New() // enabled registry, no trace installed
	allocs := testing.AllocsPerRun(100, func() {
		ctx2, s := StartSpan(ctx, reg, "stage")
		s.SetAttr("k", 1)
		agg := s.Agg("work")
		agg.Observe(0.001)
		agg.Add(1)
		_, s2 := StartSpan(ctx2, reg, "inner")
		s2.End()
		s.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %v per run, want 0", allocs)
	}
}

// TestStartCLITrace checks that the -trace plumbing writes a loadable
// Chrome trace (and, with a .jsonl suffix, span JSONL) at Close.
func TestStartCLITrace(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/trace.json"
	c, err := StartCLI("", path, "", false)
	if err != nil {
		t.Fatalf("StartCLI: %v", err)
	}
	if c.Registry == nil {
		t.Fatal("trace StartCLI returned nil registry")
	}
	s := c.Registry.StartSpan("work")
	s.End()
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data := readFile(t, path)
	var out struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("trace file not valid JSON: %v", err)
	}
	// "run" root plus "work".
	if len(out.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2:\n%s", len(out.TraceEvents), data)
	}

	jpath := dir + "/trace.jsonl"
	c, err = StartCLI("", jpath, "", false)
	if err != nil {
		t.Fatalf("StartCLI(.jsonl): %v", err)
	}
	c.Registry.StartSpan("work").End()
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(readFile(t, jpath))), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines, want 2", len(lines))
	}
	for _, ln := range lines {
		var s SpanSnapshot
		if err := json.Unmarshal([]byte(ln), &s); err != nil {
			t.Fatalf("bad span JSONL %q: %v", ln, err)
		}
	}
}
