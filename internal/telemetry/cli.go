package telemetry

import (
	"bufio"
	"fmt"
	"os"
)

// CLI bundles the run-telemetry surface every command shares: the
// registry to thread into the library, plus the JSONL file sink and
// debug HTTP listener behind the -telemetry and -debug-addr flags.
type CLI struct {
	// Registry is nil when telemetry was not requested; it is safe to
	// pass onward unconditionally (the whole package is nil-safe).
	Registry *Registry

	file *os.File
	buf  *bufio.Writer
	sink *EventSink
	dbg  *DebugServer
}

// StartCLI wires up CLI telemetry: when jsonlPath, debugAddr or force is
// set it creates a Registry, attaching a JSONL event sink at jsonlPath
// (when non-empty) and a debug listener at debugAddr (when non-empty).
// With all three unset it returns an inert CLI with a nil Registry.
// Close flushes and releases everything.
func StartCLI(jsonlPath, debugAddr string, force bool) (*CLI, error) {
	c := &CLI{}
	if jsonlPath == "" && debugAddr == "" && !force {
		return c, nil
	}
	c.Registry = New()
	if jsonlPath != "" {
		f, err := os.Create(jsonlPath)
		if err != nil {
			return nil, fmt.Errorf("telemetry: creating event log: %w", err)
		}
		c.file = f
		c.buf = bufio.NewWriter(f)
		c.sink = NewEventSink(c.buf)
		c.Registry.SetSink(c.sink)
	}
	if debugAddr != "" {
		dbg, err := ServeDebug(debugAddr, c.Registry)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.dbg = dbg
		fmt.Fprintf(os.Stderr, "telemetry: serving /metrics and /debug/pprof on http://%s\n", dbg.Addr())
	}
	return c, nil
}

// Close flushes the event log and stops the debug listener, reporting
// the first error (including any sticky sink write error).
func (c *CLI) Close() error {
	if c == nil {
		return nil
	}
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if c.dbg != nil {
		keep(c.dbg.Close())
		c.dbg = nil
	}
	if c.sink != nil {
		keep(c.sink.Err())
		c.sink = nil
	}
	if c.buf != nil {
		keep(c.buf.Flush())
		c.buf = nil
	}
	if c.file != nil {
		keep(c.file.Close())
		c.file = nil
	}
	return first
}
