package telemetry

import (
	"bufio"
	"fmt"
	"os"
	"strings"
)

// CLI bundles the run-telemetry surface every command shares: the
// registry to thread into the library, plus the JSONL file sink, the
// span-trace file and debug HTTP listener behind the -telemetry, -trace
// and -debug-addr flags.
type CLI struct {
	// Registry is nil when telemetry was not requested; it is safe to
	// pass onward unconditionally (the whole package is nil-safe).
	Registry *Registry

	file *os.File
	buf  *bufio.Writer
	sink *EventSink
	dbg  *DebugServer

	trace     *Trace
	tracePath string
	root      *Span
}

// StartCLI wires up CLI telemetry: when any of jsonlPath, tracePath,
// debugAddr or force is set it creates a Registry, attaching a JSONL
// event sink at jsonlPath, a span trace written to tracePath at Close
// (Chrome trace-event JSON, or span JSONL when the path ends in
// ".jsonl"), and a debug listener at debugAddr. The trace opens with an
// active "run" root span, so solver work outside any pipeline stage
// still lands under a span. With everything unset it returns an inert
// CLI with a nil Registry. Close flushes and releases everything.
func StartCLI(jsonlPath, tracePath, debugAddr string, force bool) (*CLI, error) {
	c := &CLI{}
	if jsonlPath == "" && tracePath == "" && debugAddr == "" && !force {
		return c, nil
	}
	c.Registry = New()
	if jsonlPath != "" {
		f, err := os.Create(jsonlPath)
		if err != nil {
			return nil, fmt.Errorf("telemetry: creating event log: %w", err)
		}
		c.file = f
		c.buf = bufio.NewWriter(f)
		c.sink = NewEventSink(c.buf)
		c.Registry.SetSink(c.sink)
	}
	if tracePath != "" {
		// Create eagerly so a bad path fails before the run, not after.
		f, err := os.Create(tracePath)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("telemetry: creating trace file: %w", err)
		}
		f.Close()
		c.trace = NewTrace()
		c.tracePath = tracePath
		c.Registry.SetTrace(c.trace)
		c.root = c.Registry.StartSpan("run")
	}
	if debugAddr != "" {
		dbg, err := ServeDebug(debugAddr, c.Registry)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.dbg = dbg
		fmt.Fprintf(os.Stderr, "telemetry: serving /metrics and /debug/pprof on http://%s\n", dbg.Addr())
	}
	return c, nil
}

// Close ends the root span, writes the trace file, flushes the event log
// and stops the debug listener, reporting the first error (including any
// sticky sink write error).
func (c *CLI) Close() error {
	if c == nil {
		return nil
	}
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if c.dbg != nil {
		keep(c.dbg.Close())
		c.dbg = nil
	}
	if c.trace != nil {
		c.root.End()
		keep(c.writeTrace())
		c.trace = nil
	}
	if c.sink != nil {
		keep(c.sink.Err())
		c.sink = nil
	}
	if c.buf != nil {
		keep(c.buf.Flush())
		c.buf = nil
	}
	if c.file != nil {
		keep(c.file.Close())
		c.file = nil
	}
	return first
}

// writeTrace renders the collected spans to the -trace file: Chrome
// trace-event JSON by default, span-per-line JSONL when the path ends in
// ".jsonl".
func (c *CLI) writeTrace() error {
	f, err := os.Create(c.tracePath)
	if err != nil {
		return fmt.Errorf("telemetry: writing trace: %w", err)
	}
	bw := bufio.NewWriter(f)
	if strings.HasSuffix(c.tracePath, ".jsonl") {
		err = c.trace.WriteJSONL(bw)
	} else {
		err = c.trace.WriteChromeTrace(bw)
	}
	if ferr := bw.Flush(); err == nil {
		err = ferr
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
