package telemetry

import (
	"math"
	"testing"
)

// Quantile edge cases: empty, single-observation and all-equal
// histograms must degrade gracefully instead of inventing mass.

func TestQuantileEmpty(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if v := h.Quantile(q); !math.IsNaN(v) {
			t.Errorf("empty histogram Quantile(%v) = %v, want NaN", q, v)
		}
	}
	var nilH *Histogram
	if v := nilH.Quantile(0.5); !math.IsNaN(v) {
		t.Errorf("nil histogram Quantile = %v, want NaN", v)
	}
}

func TestQuantileSingleObservation(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	h.Observe(1.5)
	// With one observation every quantile is that observation: min and
	// max pin both bucket edges to 1.5, so interpolation collapses.
	for _, q := range []float64{0.01, 0.5, 0.99} {
		if v := h.Quantile(q); v != 1.5 {
			t.Errorf("single-observation Quantile(%v) = %v, want 1.5", q, v)
		}
	}
}

func TestQuantileAllEqual(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(3)
	}
	for _, q := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
		if v := h.Quantile(q); v != 3 {
			t.Errorf("all-equal Quantile(%v) = %v, want 3", q, v)
		}
	}
}

func TestQuantileAllEqualOverflowBucket(t *testing.T) {
	// Every observation beyond the last bound lands in the +Inf bucket;
	// its edges are [last bound, observed max], and all-equal input must
	// still come back exact, not interpolated toward infinity.
	h := newHistogram([]float64{1, 2})
	for i := 0; i < 10; i++ {
		h.Observe(50)
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		if v := h.Quantile(q); v != 50 {
			t.Errorf("overflow-bucket all-equal Quantile(%v) = %v, want 50", q, v)
		}
	}
}

func TestQuantileInvalidQ(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	if v := h.Quantile(math.NaN()); !math.IsNaN(v) {
		t.Errorf("Quantile(NaN) = %v, want NaN", v)
	}
	if v := h.Quantile(0); v != h.Min() {
		t.Errorf("Quantile(0) = %v, want the observed min %v", v, h.Min())
	}
	if v := h.Quantile(1); v != h.Max() {
		t.Errorf("Quantile(1) = %v, want the observed max %v", v, h.Max())
	}
	if v := h.Quantile(-3); v != h.Min() {
		t.Errorf("Quantile(-3) = %v, want the observed min", v)
	}
	if v := h.Quantile(7); v != h.Max() {
		t.Errorf("Quantile(7) = %v, want the observed max", v)
	}
}
