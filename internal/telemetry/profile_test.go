package telemetry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestProfilerHeapOnly checks the cpu<=0 configuration: one heap
// profile per capture, written into a directory created on demand.
func TestProfilerHeapOnly(t *testing.T) {
	if NewProfiler("", time.Second) != nil {
		t.Fatal("empty dir must disable the profiler")
	}
	dir := filepath.Join(t.TempDir(), "flight") // does not exist yet
	p := NewProfiler(dir, 0)
	paths := p.Capture("job1-chain_stalled")
	if len(paths) != 1 {
		t.Fatalf("got %d paths, want 1 (heap only): %v", len(paths), paths)
	}
	if !strings.HasSuffix(paths[0], ".heap.pprof") {
		t.Fatalf("path %q, want .heap.pprof suffix", paths[0])
	}
	if filepath.Dir(paths[0]) != dir {
		t.Fatalf("profile %q written outside %q", paths[0], dir)
	}
	info, err := os.Stat(paths[0])
	if err != nil || info.Size() == 0 {
		t.Fatalf("heap profile missing or empty: %v", err)
	}
}

// TestProfilerCPUAndHeap checks the full capture: heap plus a CPU
// window, both named after the sanitized prefix.
func TestProfilerCPUAndHeap(t *testing.T) {
	dir := t.TempDir()
	p := NewProfiler(dir, 20*time.Millisecond)
	paths := p.Capture("job/2 weird")
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want heap + cpu: %v", len(paths), paths)
	}
	var sawHeap, sawCPU bool
	for _, path := range paths {
		base := filepath.Base(path)
		if strings.ContainsAny(base, "/ ") {
			t.Fatalf("capture prefix not sanitized: %q", base)
		}
		if !strings.HasPrefix(base, "job_2_weird-") {
			t.Fatalf("capture name %q, want sanitized prefix job_2_weird-", base)
		}
		info, err := os.Stat(path)
		if err != nil || info.Size() == 0 {
			t.Fatalf("profile %s missing or empty: %v", path, err)
		}
		sawHeap = sawHeap || strings.HasSuffix(path, ".heap.pprof")
		sawCPU = sawCPU || strings.HasSuffix(path, ".cpu.pprof")
	}
	if !sawHeap || !sawCPU {
		t.Fatalf("captures %v, want one .heap.pprof and one .cpu.pprof", paths)
	}
}

// TestProfilerSerializesCaptures checks the alert-storm guard: while a
// capture is in flight, further Capture calls return immediately with
// nothing, and a nil profiler no-ops.
func TestProfilerSerializesCaptures(t *testing.T) {
	p := NewProfiler(t.TempDir(), 0)
	p.busy.Store(true) // simulate an in-flight capture
	if got := p.Capture("overlap"); got != nil {
		t.Fatalf("overlapping capture wrote %v, want nil", got)
	}
	p.busy.Store(false)
	if got := p.Capture("after"); len(got) == 0 {
		t.Fatal("capture after the window freed must work")
	}

	var nilp *Profiler
	if nilp.Capture("x") != nil {
		t.Fatal("nil profiler captured something")
	}
}
