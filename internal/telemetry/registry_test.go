package telemetry

import (
	"strings"
	"sync"
	"testing"
)

// TestNilSafety exercises the whole nil chain: a nil registry hands out
// nil scopes, nil scopes hand out nil metrics, and every operation on
// them is a no-op instead of a panic. This is the contract that lets
// instrumented call sites skip "enabled?" checks entirely.
func TestNilSafety(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	s := r.Scope("x")
	if s != nil {
		t.Fatal("nil registry returned a live scope")
	}
	c := s.Counter("c")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter holds a value")
	}
	g := s.Gauge("g")
	g.Set(3)
	if g.Value() != 0 {
		t.Fatal("nil gauge holds a value")
	}
	h := s.Histogram("h", ExpBuckets(1, 2, 4))
	h.Observe(1)
	sw := h.Start()
	sw.Stop()
	if h.Count() != 0 || h.Buckets() != nil {
		t.Fatal("nil histogram holds observations")
	}
	r.Emit("event", map[string]any{"k": 1})
	r.SetSink(nil)
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil registry snapshot = %v", got)
	}
	r.WriteTable(&strings.Builder{})
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
}

// TestScopeAndMetricIdentity verifies that repeated lookups return the
// same underlying metric, so handles can be cached anywhere.
func TestScopeAndMetricIdentity(t *testing.T) {
	r := New()
	if r.Scope("a") != r.Scope("a") {
		t.Fatal("same scope name gave different scopes")
	}
	s := r.Scope("a")
	if s.Counter("c") != s.Counter("c") {
		t.Fatal("same counter name gave different counters")
	}
	if s.Gauge("g") != s.Gauge("g") {
		t.Fatal("same gauge name gave different gauges")
	}
	if s.Histogram("h", ExpBuckets(1, 2, 4)) != s.Histogram("h", nil) {
		t.Fatal("same histogram name gave different histograms")
	}
}

// TestConcurrentCounters hammers one counter, one gauge and one
// histogram from many goroutines; run under -race this is the
// thread-safety proof, and the final counter/histogram totals must be
// exact (atomic, not lossy).
func TestConcurrentCounters(t *testing.T) {
	r := New()
	s := r.Scope("load")
	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(id int) {
			defer wg.Done()
			// Resolve handles concurrently too: scope/metric creation
			// must be safe against itself.
			c := r.Scope("load").Counter("ops")
			g := s.Gauge("level")
			h := s.Histogram("lat", ExpBuckets(1, 10, 4))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Set(float64(id))
				h.Observe(float64(i%1000) + 0.5)
			}
		}(w)
	}
	wg.Wait()
	if got := s.Counter("ops").Value(); got != workers*perWorker {
		t.Fatalf("counter lost updates: got %d want %d", got, workers*perWorker)
	}
	h := s.Histogram("lat", nil)
	if h.Count() != workers*perWorker {
		t.Fatalf("histogram lost observations: got %d want %d", h.Count(), workers*perWorker)
	}
	var inBuckets int64
	for _, b := range h.Buckets() {
		inBuckets += b.Count
	}
	if inBuckets != h.Count() {
		t.Fatalf("bucket sum %d != count %d", inBuckets, h.Count())
	}
	lvl := s.Gauge("level").Value()
	if lvl < 0 || lvl >= workers {
		t.Fatalf("gauge outside any written value: %v", lvl)
	}
}

// TestHotPathAllocs is the overhead guardrail in its non-flaky form:
// the enabled hot-path operations must not allocate at all, and the
// disabled (nil) path must not either. Timing-based gates are flaky in
// CI; a zero-allocation assertion is deterministic and is what keeps
// "only an atomic add when enabled" honest.
func TestHotPathAllocs(t *testing.T) {
	r := New()
	s := r.Scope("hot")
	c := s.Counter("c")
	g := s.Gauge("g")
	h := s.Histogram("h", ExpBuckets(1e-6, 10, 7))
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(1.5) }); n != 0 {
		t.Errorf("Gauge.Set allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(3e-4) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v per op", n)
	}
	var nilC *Counter
	var nilH *Histogram
	if n := testing.AllocsPerRun(1000, func() { nilC.Inc(); nilH.Observe(1) }); n != 0 {
		t.Errorf("nil-receiver ops allocate %v per op", n)
	}
}
