package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
	"time"
)

// EventSink serializes structured run events as JSON Lines: one JSON
// object per line, written atomically under a mutex so lines never
// interleave and the "seq" field gives a total order matching file
// order. Keys inside an event are emitted in sorted order (encoding/json
// map behavior), so the byte stream for a deterministic run is
// reproducible up to timestamps.
//
// Every event carries the envelope fields
//
//	seq    monotonically increasing sequence number (0-based)
//	t_ms   wall milliseconds since the sink was created
//	event  the event name, dot-namespaced by layer ("spice.fallback",
//	       "gibbs.chain", "progress", "run.done", …)
//
// merged with the caller's fields. Non-finite float64 values (the
// relative error is +Inf until the first failure lands) are replaced by
// their string spelling, because JSON has no encoding for them.
type EventSink struct {
	start time.Time

	mu  sync.Mutex
	w   io.Writer
	seq int64
	err error
}

// NewEventSink wraps w. The caller keeps ownership of w (closing a
// backing file after the run is the caller's job).
func NewEventSink(w io.Writer) *EventSink {
	return &EventSink{start: time.Now(), w: w}
}

// Emit writes one event line. Errors are sticky and reported by Err —
// telemetry must never fail a run.
func (s *EventSink) Emit(event string, fields map[string]any) {
	if s == nil {
		return
	}
	obj := make(map[string]any, len(fields)+3)
	for k, v := range fields {
		obj[k] = sanitizeJSON(v)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	obj["seq"] = s.seq
	obj["t_ms"] = time.Since(s.start).Milliseconds()
	obj["event"] = event
	b, err := json.Marshal(obj)
	if err != nil {
		if s.err == nil {
			s.err = fmt.Errorf("telemetry: marshaling event %q: %w", event, err)
		}
		return
	}
	s.seq++
	b = append(b, '\n')
	if _, err := s.w.Write(b); err != nil && s.err == nil {
		s.err = fmt.Errorf("telemetry: writing event %q: %w", event, err)
	}
}

// Err returns the first write or marshal error, if any.
func (s *EventSink) Err() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// sanitizeJSON maps values JSON cannot carry (NaN, ±Inf — in both bare
// float64 fields and []float64 series) to their string spelling.
func sanitizeJSON(v any) any {
	switch x := v.(type) {
	case float64:
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Sprint(x)
		}
		return x
	case []float64:
		out := make([]any, len(x))
		for i, f := range x {
			out[i] = sanitizeJSON(f)
		}
		return out
	default:
		return v
	}
}
