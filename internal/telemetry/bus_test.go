package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func collect(sub *Subscription, n int) []Event {
	out := make([]Event, 0, n)
	for ev := range sub.Events() {
		out = append(out, ev)
		if len(out) == n {
			break
		}
	}
	return out
}

func TestBusPublishSubscribe(t *testing.T) {
	b := NewBus(8)
	sub := b.Subscribe(8)
	defer sub.Close()
	b.Publish("alpha", map[string]any{"x": 1})
	b.Publish("beta", nil)

	evs := collect(sub, 2)
	if evs[0].Name != "alpha" || evs[1].Name != "beta" {
		t.Fatalf("event order: got %q, %q", evs[0].Name, evs[1].Name)
	}
	if evs[0].Seq != 0 || evs[1].Seq != 1 {
		t.Fatalf("sequence numbers: got %d, %d", evs[0].Seq, evs[1].Seq)
	}
	var obj map[string]any
	if err := json.Unmarshal(evs[0].Data, &obj); err != nil {
		t.Fatalf("event data is not JSON: %v", err)
	}
	for _, key := range []string{"seq", "t_ms", "event", "x"} {
		if _, ok := obj[key]; !ok {
			t.Errorf("event data missing %q: %s", key, evs[0].Data)
		}
	}
}

func TestBusOverflowDropsWithoutBlocking(t *testing.T) {
	b := NewBus(4)
	sub := b.Subscribe(2) // tiny queue, never drained during publishing
	defer sub.Close()
	const total = 50
	for i := 0; i < total; i++ {
		b.Publish("e", nil) // must not block despite the full queue
	}
	wantDropped := int64(total - 2)
	if got := sub.Dropped(); got != wantDropped {
		t.Errorf("subscription dropped %d, want %d", got, wantDropped)
	}
	if got := b.Dropped(); got != wantDropped {
		t.Errorf("bus-wide dropped %d, want %d", got, wantDropped)
	}
	// The two queued events are the first two — drops never reorder.
	evs := collect(sub, 2)
	if evs[0].Seq != 0 || evs[1].Seq != 1 {
		t.Errorf("queued events have seq %d, %d; want 0, 1", evs[0].Seq, evs[1].Seq)
	}
}

func TestBusSubscribeSkipsHistory(t *testing.T) {
	b := NewBus(8)
	b.Publish("old", nil)
	sub := b.Subscribe(8)
	defer sub.Close()
	b.Publish("new", nil)
	ev := collect(sub, 1)[0]
	if ev.Name != "new" {
		t.Fatalf("Subscribe replayed history: got %q, want %q", ev.Name, "new")
	}
}

func TestBusSubscribeFromResume(t *testing.T) {
	b := NewBus(16)
	for i := 0; i < 6; i++ {
		b.Publish("e", map[string]any{"i": i})
	}
	// A client that saw seq 2 reconnects: it must get 3, 4, 5 — no gap,
	// no duplicate — then live events.
	sub := b.SubscribeFrom(2, 16)
	defer sub.Close()
	b.Publish("live", nil)
	evs := collect(sub, 4)
	for i, want := range []int64{3, 4, 5, 6} {
		if evs[i].Seq != want {
			t.Fatalf("resumed stream seq[%d] = %d, want %d", i, evs[i].Seq, want)
		}
	}
	if evs[3].Name != "live" {
		t.Errorf("live event after replay: got %q", evs[3].Name)
	}

	// afterSeq < 0 replays everything still in the ring.
	all := b.SubscribeFrom(-1, 16)
	defer all.Close()
	if evs := collect(all, 7); evs[0].Seq != 0 || evs[6].Seq != 6 {
		t.Errorf("full replay spans seq %d..%d, want 0..6", evs[0].Seq, evs[6].Seq)
	}
}

func TestBusRingEviction(t *testing.T) {
	b := NewBus(4)
	for i := 0; i < 10; i++ {
		b.Publish("e", nil)
	}
	ring := b.Ring()
	if len(ring) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(ring))
	}
	for i, want := range []int64{6, 7, 8, 9} {
		if ring[i].Seq != want {
			t.Errorf("ring[%d].Seq = %d, want %d (oldest-first order)", i, ring[i].Seq, want)
		}
	}
}

// TestBusOldestSeq pins the SSE gap-detection cursor through the ring's
// three states: empty, partially filled, and wrapped.
func TestBusOldestSeq(t *testing.T) {
	var nilBus *Bus
	if nilBus.OldestSeq() != 0 {
		t.Fatal("nil bus reports a retained event")
	}
	b := NewBus(4)
	if b.OldestSeq() != 0 {
		t.Fatalf("empty ring OldestSeq = %d, want 0 (next seq)", b.OldestSeq())
	}
	b.Publish("e", nil)
	b.Publish("e", nil)
	if b.OldestSeq() != 0 {
		t.Fatalf("partial ring OldestSeq = %d, want 0", b.OldestSeq())
	}
	for i := 0; i < 8; i++ {
		b.Publish("e", nil)
	}
	// 10 events through a 4-slot ring: 0..5 evicted, 6 is the oldest.
	if b.OldestSeq() != 6 {
		t.Fatalf("wrapped ring OldestSeq = %d, want 6", b.OldestSeq())
	}
	if b.Seq() != 10 {
		t.Fatalf("Seq = %d, want 10", b.Seq())
	}
}

func TestBusParentForwardingMergesTags(t *testing.T) {
	parent := NewBus(8)
	child := NewBus(8).WithParent(parent, map[string]any{"job": "j000001"})
	psub := parent.Subscribe(8)
	defer psub.Close()
	csub := child.Subscribe(8)
	defer csub.Close()

	child.Publish("progress", map[string]any{"n": 5})

	pev := collect(psub, 1)[0]
	if pev.Fields["job"] != "j000001" || pev.Fields["n"] != 5 {
		t.Errorf("forwarded fields = %v, want job tag merged with payload", pev.Fields)
	}
	// The local copy carries the same merged payload, so per-job and
	// global consumers decode identical objects.
	cev := collect(csub, 1)[0]
	if cev.Fields["job"] != "j000001" {
		t.Errorf("local fields = %v, want the tag present locally too", cev.Fields)
	}
	// Publisher fields win over tags on collision.
	child.Publish("progress", map[string]any{"job": "override"})
	if ev := collect(psub, 1)[0]; ev.Fields["job"] != "override" {
		t.Errorf("tag collision: got %v, want publisher value to win", ev.Fields["job"])
	}
}

func TestBusCloseEndsSubscriptionsKeepsRing(t *testing.T) {
	b := NewBus(8)
	sub := b.Subscribe(8)
	b.Publish("e", nil)
	b.Close()
	b.Close() // idempotent

	// Queued events drain, then the channel closes.
	if ev, ok := <-sub.Events(); !ok || ev.Name != "e" {
		t.Fatalf("queued event after Close: got %v, %v", ev, ok)
	}
	if _, ok := <-sub.Events(); ok {
		t.Fatal("subscription channel still open after bus Close")
	}
	if b.Subscribers() != 0 {
		t.Errorf("Subscribers() = %d after Close, want 0", b.Subscribers())
	}

	b.Publish("late", nil)
	if got := b.Seq(); got != 1 {
		t.Errorf("publish after Close advanced seq to %d, want 1", got)
	}
	// The flight recorder still works on a closed bus.
	var buf bytes.Buffer
	if err := b.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"event":"e"`) {
		t.Errorf("flight dump after Close = %q, want the retained event", buf.String())
	}

	// Subscribing to a closed bus yields an already-closed subscription.
	late := b.Subscribe(8)
	if _, ok := <-late.Events(); ok {
		t.Error("subscription on a closed bus delivered an event")
	}
}

func TestBusNilSafe(t *testing.T) {
	var b *Bus
	b.Publish("e", map[string]any{"x": 1})
	b.Close()
	if b.Seq() != 0 || b.Dropped() != 0 || b.Subscribers() != 0 || b.Ring() != nil {
		t.Error("nil bus accessors must return zero values")
	}
	if err := b.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Errorf("nil bus WriteJSONL: %v", err)
	}
	if b.WithParent(NewBus(1), nil) != nil {
		t.Error("nil bus WithParent must return nil")
	}
	sub := b.Subscribe(8)
	if _, ok := <-sub.Events(); ok {
		t.Error("subscription on a nil bus must be closed")
	}
	sub.Close()
	var s *Subscription
	s.Close()
	if s.Dropped() != 0 {
		t.Error("nil subscription Dropped must be 0")
	}
	if _, ok := <-s.Events(); ok {
		t.Error("nil subscription channel must be closed")
	}
}

// TestBusConcurrentPublishSubscribeClose exercises the lock discipline
// under the race detector: publishers, churning subscribers and a final
// Close must never race or deliver on a closed channel.
func TestBusConcurrentPublishSubscribeClose(t *testing.T) {
	b := NewBus(32)
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b.Publish("e", map[string]any{"p": p, "i": i})
			}
		}(p)
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				sub := b.SubscribeFrom(-1, 4)
				// Drain a little, then churn.
				for j := 0; j < 3; j++ {
					select {
					case <-sub.Events():
					default:
					}
				}
				sub.Close()
				sub.Close() // idempotent under concurrency
			}
		}()
	}
	wg.Wait()
	if got := b.Seq(); got != 800 {
		t.Fatalf("published %d events, want 800", got)
	}
	b.Close()
}

// TestBusDisabledZeroAlloc pins the off-switch cost: with no bus
// installed (nil receiver), Publish and the registry Emit fast path
// must not allocate at all.
func TestBusDisabledZeroAlloc(t *testing.T) {
	var b *Bus
	if allocs := testing.AllocsPerRun(1000, func() {
		b.Publish("progress", nil)
	}); allocs != 0 {
		t.Errorf("nil bus Publish allocates %.1f/op, want 0", allocs)
	}
	reg := New() // enabled registry, no sink, no bus
	if allocs := testing.AllocsPerRun(1000, func() {
		reg.Emit("progress", nil)
	}); allocs != 0 {
		t.Errorf("Emit without sink or bus allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkBusOverhead measures the disabled-path cost the observability
// plane adds to an instrumented hot loop: a nil bus publish and an Emit
// on a registry with neither sink nor bus. CI runs it with -benchtime 1x
// purely to keep it compiling and honest; the numbers matter locally.
func BenchmarkBusOverhead(b *testing.B) {
	b.Run("nil-bus-publish", func(b *testing.B) {
		var bus *Bus
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bus.Publish("progress", nil)
		}
	})
	b.Run("emit-no-bus", func(b *testing.B) {
		reg := New()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			reg.Emit("progress", nil)
		}
	})
	b.Run("emit-with-bus-no-subs", func(b *testing.B) {
		reg := New()
		reg.SetBus(NewBus(64))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			reg.Emit("progress", nil)
		}
	})
}
