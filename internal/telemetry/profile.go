package telemetry

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sync/atomic"
	"time"
)

// Profiler captures pprof CPU and heap profiles into the flight-recorder
// directory when a health watchdog alert fires, so the profile of the
// misbehaving process lands next to the event-ring dump that triggered
// it. Captures are serialized: the runtime supports one CPU profile at a
// time, and a storm of alerts must not stack profile windows. While one
// capture runs, further Capture calls return immediately.
//
// A nil *Profiler no-ops, matching the rest of the package, so callers
// wire it unconditionally and enable it with a flag.
type Profiler struct {
	dir  string
	cpu  time.Duration
	busy atomic.Bool
}

// NewProfiler returns a profiler writing into dir; cpu is how long each
// CPU profile window runs (<= 0 captures only heap profiles). An empty
// dir disables profiling (returns nil).
func NewProfiler(dir string, cpu time.Duration) *Profiler {
	if dir == "" {
		return nil
	}
	return &Profiler{dir: dir, cpu: cpu}
}

// Capture writes a heap profile and (when a CPU window is configured) a
// CPU profile named after prefix into the profiler's directory,
// returning the paths written. The CPU capture blocks for the
// configured window — call from a goroutine when latency matters (the
// watchdog's OnAlert hook does). Overlapping calls are skipped, as are
// all calls on a nil profiler.
func (p *Profiler) Capture(prefix string) []string {
	if p == nil {
		return nil
	}
	if !p.busy.CompareAndSwap(false, true) {
		return nil
	}
	defer p.busy.Store(false)
	if err := os.MkdirAll(p.dir, 0o755); err != nil {
		return nil
	}
	stamp := time.Now().UTC().Format("20060102T150405.000000000")
	base := filepath.Join(p.dir, fmt.Sprintf("%s-%s", sanitizeFile(prefix), stamp))
	var written []string
	if path := base + ".heap.pprof"; p.writeHeap(path) {
		written = append(written, path)
	}
	if p.cpu > 0 {
		if path := base + ".cpu.pprof"; p.writeCPU(path) {
			written = append(written, path)
		}
	}
	return written
}

// writeHeap writes one up-to-date heap profile (a GC runs first so the
// profile reflects live objects, not garbage awaiting collection).
func (p *Profiler) writeHeap(path string) bool {
	f, err := os.Create(path)
	if err != nil {
		return false
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		os.Remove(path)
		return false
	}
	return true
}

// writeCPU samples the CPU for the configured window. A failed start
// (another CPU profile already running, e.g. via the pprof debug
// endpoint) removes the empty file and reports false.
func (p *Profiler) writeCPU(path string) bool {
	f, err := os.Create(path)
	if err != nil {
		return false
	}
	defer f.Close()
	if err := pprof.StartCPUProfile(f); err != nil {
		os.Remove(path)
		return false
	}
	time.Sleep(p.cpu)
	pprof.StopCPUProfile()
	return true
}

// sanitizeFile maps a capture prefix onto the filename-safe alphabet
// used by the flight recorder.
func sanitizeFile(s string) string {
	if s == "" {
		return "capture"
	}
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
