package telemetry

import (
	"testing"
	"time"
)

// watchdogHarness wires a registry with a bus and an alert channel so
// tests can block until the watchdog reacts to a streamed event.
func watchdogHarness(t *testing.T, cfg WatchdogConfig) (*Registry, *Watchdog, chan Alert) {
	t.Helper()
	reg := New()
	reg.SetBus(NewBus(64))
	alerts := make(chan Alert, 8)
	cfg.OnAlert = func(a Alert) { alerts <- a }
	w := StartWatchdog(reg, cfg)
	if w == nil {
		t.Fatal("StartWatchdog returned nil with a bus installed")
	}
	t.Cleanup(w.Stop)
	return reg, w, alerts
}

func waitAlert(t *testing.T, alerts chan Alert, kind string) Alert {
	t.Helper()
	select {
	case a := <-alerts:
		if a.Kind != kind {
			t.Fatalf("alert kind %q, want %q", a.Kind, kind)
		}
		return a
	case <-time.After(5 * time.Second):
		t.Fatalf("no %q alert within 5s", kind)
		return Alert{}
	}
}

func TestWatchdogChainStalled(t *testing.T) {
	reg, w, alerts := watchdogHarness(t, WatchdogConfig{})
	// Healthy chain: no alert.
	reg.Emit("gibbs.chain", map[string]any{"updates": 500, "acceptance": 0.4})
	// Stalled chain: acceptance collapsed after enough updates.
	reg.Emit("gibbs.chain", map[string]any{"updates": 500, "acceptance": 0.001})
	a := waitAlert(t, alerts, "chain_stalled")
	if a.Seq != 1 {
		t.Errorf("trigger seq %d, want 1 (the stalled event)", a.Seq)
	}
	// Too few updates must not alert even with zero acceptance.
	reg.Emit("gibbs.chain", map[string]any{"updates": 10, "acceptance": 0.0})
	// Second trigger of an already-fired kind stays silent.
	reg.Emit("gibbs.chain", map[string]any{"updates": 500, "acceptance": 0.001})
	time.Sleep(20 * time.Millisecond)
	select {
	case a := <-alerts:
		t.Fatalf("unexpected second alert %+v", a)
	default:
	}
	if got := w.Alerts(); len(got) != 1 || got[0].Kind != "chain_stalled" {
		t.Errorf("Alerts() = %+v, want exactly the chain_stalled alert", got)
	}
	if v := reg.Scope("health").Gauge("chain_stalled").Value(); v != 1 {
		t.Errorf("health gauge = %v, want 1", v)
	}
	if c := reg.Scope("health").Counter("alerts_total").Value(); c != 1 {
		t.Errorf("alerts_total = %d, want 1", c)
	}
}

func TestWatchdogWeightBlowup(t *testing.T) {
	reg, _, alerts := watchdogHarness(t, WatchdogConfig{})
	// Below the sample floor: ignored.
	reg.Emit("progress", map[string]any{"n": 100, "max_weight_frac": 0.9})
	// Healthy weights: ignored.
	reg.Emit("progress", map[string]any{"n": 1000, "max_weight_frac": 0.05})
	// One weight carrying 60% of the estimate: alert.
	reg.Emit("progress", map[string]any{"n": 1000, "max_weight_frac": 0.6})
	waitAlert(t, alerts, "weight_blowup")
}

func TestWatchdogNewtonStorm(t *testing.T) {
	reg, _, alerts := watchdogHarness(t, WatchdogConfig{})
	s := reg.Scope("spice")
	s.Counter("solves_total").Add(1000)
	s.Counter("fallback_gmin_total").Add(400)
	s.Counter("fallback_source_total").Add(300)
	// The solver counters are sampled when a progress event arrives.
	reg.Emit("progress", map[string]any{"n": 10})
	waitAlert(t, alerts, "newton_storm")
}

func TestWatchdogExecutorStarved(t *testing.T) {
	reg, _, alerts := watchdogHarness(t, WatchdogConfig{
		Tick:            5 * time.Millisecond,
		StarvationTicks: 2,
	})
	reg.Scope("jobs").Gauge("queue_depth").Set(3)
	reg.Scope("jobs").Gauge("running").Set(0)
	waitAlert(t, alerts, "executor_starved")
}

func TestWatchdogStarvationHysteresis(t *testing.T) {
	reg, w, alerts := watchdogHarness(t, WatchdogConfig{
		Tick:            5 * time.Millisecond,
		StarvationTicks: 100, // far more ticks than the test allows
	})
	reg.Scope("jobs").Gauge("queue_depth").Set(3)
	time.Sleep(50 * time.Millisecond)
	select {
	case a := <-alerts:
		t.Fatalf("starvation alert %+v fired before the hysteresis elapsed", a)
	default:
	}
	if got := w.Alerts(); got != nil {
		t.Errorf("Alerts() = %+v, want nil while under the tick threshold", got)
	}
}

func TestWatchdogNilAndDisabled(t *testing.T) {
	var w *Watchdog
	w.Stop()
	if w.Alerts() != nil {
		t.Error("nil watchdog Alerts must be nil")
	}
	if StartWatchdog(nil, WatchdogConfig{}) != nil {
		t.Error("StartWatchdog(nil reg) must return nil")
	}
	if StartWatchdog(New(), WatchdogConfig{}) != nil {
		t.Error("StartWatchdog without a bus must return nil")
	}
}

// TestWatchdogSurvivesBusClose pins the teardown order the job layer
// uses: the bus may close before Stop, and the watchdog must neither
// spin nor panic in between.
func TestWatchdogSurvivesBusClose(t *testing.T) {
	reg := New()
	bus := NewBus(16)
	reg.SetBus(bus)
	w := StartWatchdog(reg, WatchdogConfig{Tick: time.Millisecond})
	bus.Close()
	time.Sleep(10 * time.Millisecond) // a few ticks after the close
	w.Stop()
}
