package telemetry

import "testing"

// TestClockSyncKeepsMinRTT checks the core Cristian's-algorithm
// behaviour: the estimator keeps the sample with the tightest round
// trip, since its offset has the smallest uncertainty bound.
func TestClockSyncKeepsMinRTT(t *testing.T) {
	var c ClockSync
	if _, ok := c.OffsetUS(); ok {
		t.Fatal("fresh ClockSync claims to have a sample")
	}
	if c.RTTUS() != 0 {
		t.Fatal("fresh ClockSync reports a round trip")
	}

	// send 1000, recv 1200 → midpoint 1100; remote 501100 → offset 500000.
	c.Observe(1000, 1200, 501100)
	if off, ok := c.OffsetUS(); !ok || off != 500000 {
		t.Fatalf("offset = %d (ok %v), want 500000", off, ok)
	}
	if c.RTTUS() != 200 {
		t.Fatalf("rtt = %d, want 200", c.RTTUS())
	}

	// A worse (higher-RTT) sample must not displace the kept one even
	// when its offset estimate differs wildly.
	c.Observe(2000, 4000, 703000)
	if off, _ := c.OffsetUS(); off != 500000 {
		t.Fatalf("higher-RTT sample displaced the estimate: offset %d", off)
	}

	// A tighter round trip replaces it.
	c.Observe(5000, 5100, 905050) // midpoint 5050, offset 900000, rtt 100
	if off, _ := c.OffsetUS(); off != 900000 {
		t.Fatalf("lower-RTT sample not adopted: offset %d", off)
	}
	if c.RTTUS() != 100 {
		t.Fatalf("rtt = %d, want 100", c.RTTUS())
	}
}

// TestClockSyncAgesOutStaleMinimum checks the drift defence: after
// maxStale consecutive worse samples the kept minimum is considered
// outdated and the next sample wins regardless of its round trip.
func TestClockSyncAgesOutStaleMinimum(t *testing.T) {
	var c ClockSync
	c.Observe(0, 100, 1000050) // offset 1000000, rtt 100
	base := int64(10000)
	for i := 0; i < maxStale; i++ {
		send := base + int64(i)*1000
		c.Observe(send, send+500, send+250+2000000) // rtt 500, offset 2000000
		if off, _ := c.OffsetUS(); off != 1000000 {
			t.Fatalf("sample %d displaced the minimum before maxStale", i)
		}
	}
	// The (maxStale+1)-th worse sample re-anchors.
	send := base + int64(maxStale)*1000
	c.Observe(send, send+500, send+250+2000000)
	if off, _ := c.OffsetUS(); off != 2000000 {
		t.Fatalf("offset = %d after aging, want 2000000", off)
	}
	if c.RTTUS() != 500 {
		t.Fatalf("rtt = %d after aging, want 500", c.RTTUS())
	}
}

// TestClockSyncDiscardsBadSamples checks that negative round trips
// (clock steps mid-request) and zero remote readings are ignored, and
// that the whole API is nil-safe.
func TestClockSyncDiscardsBadSamples(t *testing.T) {
	var c ClockSync
	c.Observe(1000, 500, 2000) // negative rtt
	if _, ok := c.OffsetUS(); ok {
		t.Fatal("negative round trip was accepted")
	}
	c.Observe(1000, 1100, 0) // no remote reading
	if _, ok := c.OffsetUS(); ok {
		t.Fatal("zero remote reading was accepted")
	}

	var nilc *ClockSync
	nilc.Observe(1, 2, 3)
	if off, ok := nilc.OffsetUS(); ok || off != 0 {
		t.Fatal("nil ClockSync leaked state")
	}
	if nilc.RTTUS() != 0 {
		t.Fatal("nil ClockSync reported a round trip")
	}
}
