package telemetry

import "sync"

// ClockSync estimates the offset between this process's wall clock and a
// remote peer's from request round trips (Cristian's algorithm): for a
// request sent at local time s, answered with the peer's clock reading
// m, and received at local time r, the peer's clock at the midpoint is
// assumed to read m while the local clock read (s+r)/2, giving
// offset = m - (s+r)/2 with an uncertainty of half the round trip.
//
// Workers feed every dist poll/renew round trip through Observe and the
// coordinator uses the resulting offset to place worker span times on
// its own trace clock. The estimator keeps the lowest-round-trip sample
// (the tightest uncertainty bound) but ages it out after maxStale worse
// samples so a long-lived worker still tracks slow clock drift.
//
// All methods are nil-safe, matching the rest of the package.
type ClockSync struct {
	mu       sync.Mutex
	has      bool
	offsetUS int64
	rttUS    int64
	stale    int
}

// maxStale is how many higher-RTT samples are observed before the kept
// minimum-RTT sample is considered outdated and replaced regardless:
// with dist's default renew cadence (TTL/3) this re-anchors the offset
// estimate every few minutes of steady-state polling.
const maxStale = 32

// Observe records one round trip: the request left at sendUnixUS, the
// response arrived at recvUnixUS (both local wall-clock microseconds),
// and the peer reported its wall clock as remoteUnixUS. Negative round
// trips (clock steps mid-request) are discarded.
func (c *ClockSync) Observe(sendUnixUS, recvUnixUS, remoteUnixUS int64) {
	if c == nil || remoteUnixUS == 0 {
		return
	}
	rtt := recvUnixUS - sendUnixUS
	if rtt < 0 {
		return
	}
	offset := remoteUnixUS - (sendUnixUS+recvUnixUS)/2
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.has || rtt <= c.rttUS || c.stale >= maxStale {
		c.has = true
		c.offsetUS = offset
		c.rttUS = rtt
		c.stale = 0
		return
	}
	c.stale++
}

// OffsetUS returns the current estimate of (remote clock − local clock)
// in microseconds, and whether any sample has been observed. Remote
// wall time ≈ local wall time + offset.
func (c *ClockSync) OffsetUS() (int64, bool) {
	if c == nil {
		return 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.offsetUS, c.has
}

// RTTUS returns the round trip of the sample backing the current offset
// estimate — its uncertainty is half of this (0 before any sample).
func (c *ClockSync) RTTUS() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rttUS
}
