package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// MetricPoint is one metric in a registry snapshot. It is also the
// metrics-federation wire type workers upload on lease renew; the JSON
// tags keep that wire format stable. Beware that a raw snapshot is not
// always JSON-marshalable — empty histograms carry NaN quantiles and
// ±Inf extrema, and the overflow bucket's bound is +Inf — so wire
// senders sanitize first (see internal/dist).
type MetricPoint struct {
	// Scope and Name locate the metric; Kind is "counter", "gauge" or
	// "histogram".
	Scope string `json:"scope"`
	Name  string `json:"name"`
	Kind  string `json:"kind"`
	// Value is the counter count or gauge level (0 for histograms).
	Value float64 `json:"value,omitempty"`
	// Histogram aggregates (Count is also the number of observations).
	Count int64   `json:"count,omitempty"`
	Sum   float64 `json:"sum,omitempty"`
	Min   float64 `json:"min,omitempty"`
	Max   float64 `json:"max,omitempty"`
	// P50, P90 and P99 are approximate quantiles reconstructed from the
	// bucket counts (NaN with no observations).
	P50     float64       `json:"p50,omitempty"`
	P90     float64       `json:"p90,omitempty"`
	P99     float64       `json:"p99,omitempty"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot returns every metric in the registry, sorted by scope then
// name (counters, then gauges, then histograms within a scope+name
// collision, which well-behaved callers avoid). Nil registries snapshot
// empty.
func (r *Registry) Snapshot() []MetricPoint {
	if r == nil {
		return nil
	}
	var out []MetricPoint
	for _, sn := range r.scopeNames() {
		s := r.Scope(sn)
		s.mu.RLock()
		names := make([]string, 0, len(s.counters)+len(s.gauges)+len(s.hists))
		for n := range s.counters {
			names = append(names, n)
		}
		for n := range s.gauges {
			names = append(names, n)
		}
		for n := range s.hists {
			names = append(names, n)
		}
		sort.Strings(names)
		seen := map[string]bool{}
		for _, n := range names {
			if seen[n] {
				continue
			}
			seen[n] = true
			if c, ok := s.counters[n]; ok {
				out = append(out, MetricPoint{Scope: sn, Name: n, Kind: "counter", Value: float64(c.Value())})
			}
			if g, ok := s.gauges[n]; ok {
				out = append(out, MetricPoint{Scope: sn, Name: n, Kind: "gauge", Value: g.Value()})
			}
			if h, ok := s.hists[n]; ok {
				out = append(out, MetricPoint{
					Scope: sn, Name: n, Kind: "histogram",
					Count: h.Count(), Sum: h.Sum(), Min: h.Min(), Max: h.Max(),
					P50: h.Quantile(0.5), P90: h.Quantile(0.9), P99: h.Quantile(0.99),
					Buckets: h.Buckets(),
				})
			}
		}
		s.mu.RUnlock()
	}
	return out
}

// promName builds the exposition-format metric name: the repro_ prefix,
// the scope, and the metric name, with non-alphanumeric runes mapped to
// underscores.
func promName(scope, name string) string {
	san := func(s string) string {
		var b strings.Builder
		for _, r := range s {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
				b.WriteRune(r)
			default:
				b.WriteRune('_')
			}
		}
		return b.String()
	}
	return "repro_" + san(scope) + "_" + san(name)
}

func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms with cumulative le buckets plus _sum and _count. No
// external dependencies — the format is plain text.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, m := range r.Snapshot() {
		name := promName(m.Scope, m.Name)
		var err error
		switch m.Kind {
		case "counter":
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %s\n", name, name, promFloat(m.Value))
		case "gauge":
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, promFloat(m.Value))
		case "histogram":
			if _, err = fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
				return err
			}
			cum := int64(0)
			for _, b := range m.Buckets {
				cum += b.Count
				if _, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promFloat(b.UpperBound), cum); err != nil {
					return err
				}
			}
			if _, err = fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, promFloat(m.Sum), name, m.Count); err != nil {
				return err
			}
			// Approximate quantiles reconstructed from the bucket counts,
			// exported as separate gauges (a histogram and a summary cannot
			// share a metric name in the exposition format). Skipped while
			// empty — NaN samples upset some scrapers.
			if m.Count > 0 {
				for _, p := range [...]struct {
					suffix string
					v      float64
				}{{"p50", m.P50}, {"p90", m.P90}, {"p99", m.P99}} {
					if _, err = fmt.Fprintf(w, "# TYPE %s_%s gauge\n%s_%s %s\n",
						name, p.suffix, name, p.suffix, promFloat(p.v)); err != nil {
						return err
					}
				}
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteTable writes a human-readable snapshot of every metric, the table
// the CLIs print at run end.
func (r *Registry) WriteTable(w io.Writer) {
	if r == nil {
		return
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SCOPE\tMETRIC\tVALUE")
	for _, m := range r.Snapshot() {
		switch m.Kind {
		case "counter":
			fmt.Fprintf(tw, "%s\t%s\t%d\n", m.Scope, m.Name, int64(m.Value))
		case "gauge":
			fmt.Fprintf(tw, "%s\t%s\t%.6g\n", m.Scope, m.Name, m.Value)
		case "histogram":
			if m.Count == 0 {
				fmt.Fprintf(tw, "%s\t%s\tn=0\n", m.Scope, m.Name)
				continue
			}
			fmt.Fprintf(tw, "%s\t%s\tn=%d mean=%.4g p50=%.4g p99=%.4g min=%.4g max=%.4g\n",
				m.Scope, m.Name, m.Count, m.Sum/float64(m.Count), m.P50, m.P99, m.Min, m.Max)
		}
	}
	tw.Flush()
}
