package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span tracing: a hierarchical wall-time breakdown of one run, answering
// "where did the time go inside this estimate" the way the metrics
// registry answers "how much work happened overall".
//
// A Trace collects spans; a Span is one named interval on the trace's
// monotonic clock. Spans form a tree (stage 1 → starting-point search →
// Gibbs chain → fit → stage 2), and each span additionally carries a set
// of named aggregates (SpanAgg) for unbounded repetitive work — stage-2
// evaluation chunks, SPICE solves, Gibbs coordinate updates — where one
// span per occurrence would swamp the trace. Aggregates are a pair of
// atomic adds per observation, so concurrent workers record into a shared
// parent span without locks.
//
// Everything is nil-safe and off by default, matching the rest of the
// package: with no Trace installed on the Registry, StartSpan returns a
// nil *Span, every method of which no-ops without allocating, so traced
// code paths cost one nil check when tracing is disabled.
//
// Finished traces export two ways: span-per-line JSONL (WriteJSONL) and
// the Chrome trace-event format (WriteChromeTrace), which Perfetto and
// chrome://tracing load directly.

// Trace collects the spans of one run. All methods are safe for
// concurrent use and nil-safe.
type Trace struct {
	start time.Time

	nextID atomic.Int64
	// active is the innermost span started via StartSpan and not yet
	// ended — the aggregation target for instrumented layers (the SPICE
	// solver) that run without a context. Pipeline stages are strictly
	// nested and started sequentially, so a swap-on-start /
	// restore-on-end discipline reconstructs the tree.
	active atomic.Pointer[Span]

	mu    sync.Mutex
	spans []*Span
	// grafted holds finished spans imported from another process's trace
	// (a worker's lease evaluation), already remapped onto this trace's
	// id space and clock. See Graft.
	grafted []SpanSnapshot
}

// NewTrace returns an empty trace whose clock starts now.
func NewTrace() *Trace { return &Trace{start: time.Now()} }

// StartUnixUS returns the wall-clock time of the trace's start as
// microseconds since the Unix epoch (0 on nil). Cross-process trace
// stitching uses it to convert span offsets between trace clocks.
func (t *Trace) StartUnixUS() int64 {
	if t == nil {
		return 0
	}
	return t.start.UnixMicro()
}

// Span is one named interval of a trace. Create spans with
// Registry.StartSpan, StartSpan (context-aware) or Span.Child; finish
// them with End. A nil *Span is fully inert.
type Span struct {
	trace    *Trace
	id       int64
	parentID int64
	name     string

	start time.Duration // on the trace's monotonic clock
	end   atomic.Int64  // nanoseconds since trace start; 0 = still running

	// prevActive restores the trace's active span on End.
	prevActive *Span

	mu    sync.Mutex
	attrs map[string]any
	aggs  []*SpanAgg
}

// SpanAgg aggregates unbounded repetitive child work under a span as an
// atomic count plus total seconds: one aggregate line instead of
// thousands of sub-spans. All methods are nil-safe.
type SpanAgg struct {
	name    string
	count   atomic.Int64
	secBits atomic.Uint64
}

// newSpan registers a new span on the trace.
func (t *Trace) newSpan(name string, parentID int64) *Span {
	s := &Span{
		trace:    t,
		id:       t.nextID.Add(1),
		parentID: parentID,
		name:     name,
		start:    time.Since(t.start),
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// StartSpan starts a span named name and marks it the trace's active
// span: the parent is the given parent when non-nil, else the currently
// active span, else the span roots a new tree. Nil-safe (returns nil).
func (t *Trace) StartSpan(parent *Span, name string) *Span {
	if t == nil {
		return nil
	}
	prev := t.active.Load()
	pid := int64(0)
	switch {
	case parent != nil:
		pid = parent.id
	case prev != nil:
		pid = prev.id
	}
	s := t.newSpan(name, pid)
	s.prevActive = prev
	t.active.Store(s)
	return s
}

// Active returns the innermost running span started via StartSpan (nil
// when none).
func (t *Trace) Active() *Span {
	if t == nil {
		return nil
	}
	return t.active.Load()
}

// Child starts a sub-span of s without activating it (nil on a nil
// span). Use StartSpan for pipeline stages; Child is for side work that
// should not capture solver aggregation.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.trace.newSpan(name, s.id)
}

// ID returns the span's trace-local id (0 on nil) — what a distributed
// trace context carries as the parent span id.
func (s *Span) ID() int64 {
	if s == nil {
		return 0
	}
	return s.id
}

// StartUS returns the span's start in microseconds on its trace's clock
// (0 on nil).
func (s *Span) StartUS() int64 {
	if s == nil {
		return 0
	}
	return s.start.Microseconds()
}

// EndUS returns the span's end in microseconds on its trace's clock, or
// 0 while the span is still running (and on nil).
func (s *Span) EndUS() int64 {
	if s == nil {
		return 0
	}
	return time.Duration(s.end.Load()).Microseconds()
}

// End closes the span at the current monotonic time and, when the span
// is the trace's active span, restores the previously active one. End is
// idempotent (the first call wins) and nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.end.CompareAndSwap(0, int64(time.Since(s.trace.start)))
	s.trace.active.CompareAndSwap(s, s.prevActive)
}

// SetAttr attaches one key/value annotation to the span (nil-safe).
// Attributes are for low-frequency facts — the method, the coordinate
// system, a stage's sim count — not per-sample data.
func (s *Span) SetAttr(key string, v any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = v
	s.mu.Unlock()
}

// Agg returns the span's named aggregate, creating it on first use
// (nil on a nil span). Resolve the handle once outside a hot loop; each
// Observe/Add is then two atomic operations.
func (s *Span) Agg(name string) *SpanAgg {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.aggs {
		if a.name == name {
			return a
		}
	}
	a := &SpanAgg{name: name}
	s.aggs = append(s.aggs, a)
	return a
}

// Observe records one occurrence taking the given seconds.
func (a *SpanAgg) Observe(seconds float64) {
	if a == nil {
		return
	}
	a.count.Add(1)
	atomicAddFloat(&a.secBits, seconds)
}

// Add records n occurrences with no time attached (pure counts, e.g.
// simulation probes inside a coordinate update).
func (a *SpanAgg) Add(n int64) {
	if a == nil {
		return
	}
	a.count.Add(n)
}

// Count returns the number of recorded occurrences (0 on nil).
func (a *SpanAgg) Count() int64 {
	if a == nil {
		return 0
	}
	return a.count.Load()
}

// Seconds returns the total recorded seconds (0 on nil).
func (a *SpanAgg) Seconds() float64 {
	if a == nil {
		return 0
	}
	return math.Float64frombits(a.secBits.Load())
}

// AggSnapshot is one aggregate in a span snapshot.
type AggSnapshot struct {
	Name    string  `json:"name"`
	Count   int64   `json:"count"`
	Seconds float64 `json:"seconds,omitempty"`
}

// SpanSnapshot is one span in a trace snapshot. Times are microseconds on
// the trace's monotonic clock.
type SpanSnapshot struct {
	ID       int64          `json:"id"`
	ParentID int64          `json:"parent,omitempty"`
	Name     string         `json:"name"`
	StartUS  int64          `json:"start_us"`
	DurUS    int64          `json:"dur_us"`
	Running  bool           `json:"running,omitempty"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Aggs     []AggSnapshot  `json:"aggs,omitempty"`
}

// Graft imports finished spans captured by another process's trace
// under the given parent span of this trace: ids are remapped into this
// trace's id space, parent links inside the batch are preserved, and
// spans whose parent is not in the batch attach to parent (or become
// roots when parent is nil). The caller must already have converted
// each snapshot's StartUS onto this trace's clock (see internal/dist's
// worker-clock normalization); Graft clamps grafted spans into
// [minStartUS, maxEndUS] when maxEndUS > 0 so a badly estimated remote
// clock offset cannot produce spans outside their enclosing lease.
// Attrs maps are retained as-is and treated read-only. Returns the
// number of spans grafted; nil-safe.
func (t *Trace) Graft(parent *Span, spans []SpanSnapshot, minStartUS, maxEndUS int64) int {
	if t == nil || len(spans) == 0 {
		return 0
	}
	parentID := int64(0)
	if parent != nil {
		parentID = parent.id
	}
	idMap := make(map[int64]int64, len(spans))
	out := make([]SpanSnapshot, 0, len(spans))
	for _, s := range spans {
		ns := s
		ns.ID = t.nextID.Add(1)
		idMap[s.ID] = ns.ID
		if mapped, ok := idMap[s.ParentID]; ok && s.ParentID != 0 {
			ns.ParentID = mapped
		} else {
			ns.ParentID = parentID
		}
		ns.Running = false
		if maxEndUS > minStartUS {
			if ns.StartUS < minStartUS {
				ns.StartUS = minStartUS
			}
			if ns.StartUS > maxEndUS-1 {
				ns.StartUS = maxEndUS - 1
			}
			if ns.StartUS+ns.DurUS > maxEndUS {
				ns.DurUS = maxEndUS - ns.StartUS
			}
		}
		if ns.DurUS < 1 {
			ns.DurUS = 1
		}
		out = append(out, ns)
	}
	t.mu.Lock()
	t.grafted = append(t.grafted, out...)
	t.mu.Unlock()
	return len(out)
}

// Snapshot returns every span in creation order, locally started spans
// first, then grafted (imported) spans in graft order. Spans still
// running are reported with Running=true and a duration up to now, so a
// live trace (the estimation service's per-job endpoint) is always
// exportable.
func (t *Trace) Snapshot() []SpanSnapshot {
	if t == nil {
		return nil
	}
	now := time.Since(t.start)
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	grafted := append([]SpanSnapshot(nil), t.grafted...)
	t.mu.Unlock()
	out := make([]SpanSnapshot, 0, len(spans)+len(grafted))
	for _, s := range spans {
		end := time.Duration(s.end.Load())
		running := end == 0
		if running {
			end = now
		}
		snap := SpanSnapshot{
			ID:       s.id,
			ParentID: s.parentID,
			Name:     s.name,
			StartUS:  s.start.Microseconds(),
			DurUS:    (end - s.start).Microseconds(),
			Running:  running,
		}
		s.mu.Lock()
		if len(s.attrs) > 0 {
			snap.Attrs = make(map[string]any, len(s.attrs))
			for k, v := range s.attrs {
				snap.Attrs[k] = sanitizeJSON(v)
			}
		}
		for _, a := range s.aggs {
			snap.Aggs = append(snap.Aggs, AggSnapshot{
				Name: a.name, Count: a.Count(), Seconds: a.Seconds(),
			})
		}
		s.mu.Unlock()
		out = append(out, snap)
	}
	return append(out, grafted...)
}

// WriteJSONL writes the trace as one JSON object per span line, in span
// creation order (nil-safe: writes nothing).
func (t *Trace) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	for _, s := range t.Snapshot() {
		b, err := json.Marshal(s)
		if err != nil {
			return fmt.Errorf("telemetry: marshaling span %q: %w", s.Name, err)
		}
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one complete ("ph":"X") event of the Chrome trace-event
// format, the JSON that Perfetto and chrome://tracing load.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`  // microseconds
	Dur  int64          `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the trace in Chrome trace-event format
// (JSON object with a "traceEvents" array of complete events), loadable
// in Perfetto or chrome://tracing. Each span becomes one event; the tid
// is the span's depth in the tree so nested stages stack visually, and
// aggregates appear in the event's args.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return nil
	}
	snaps := t.Snapshot()
	depth := make(map[int64]int64, len(snaps))
	events := make([]chromeEvent, 0, len(snaps))
	for _, s := range snaps {
		d := int64(0)
		if s.ParentID != 0 {
			d = depth[s.ParentID] + 1
		}
		depth[s.ID] = d
		args := make(map[string]any, len(s.Attrs)+len(s.Aggs))
		for k, v := range s.Attrs {
			args[k] = v
		}
		for _, a := range s.Aggs {
			args[a.Name+"_count"] = a.Count
			if a.Seconds > 0 {
				args[a.Name+"_seconds"] = a.Seconds
			}
		}
		if s.Running {
			args["running"] = true
		}
		if len(args) == 0 {
			args = nil
		}
		events = append(events, chromeEvent{
			Name: s.Name, Ph: "X", TS: s.StartUS, Dur: maxI64(s.DurUS, 1),
			PID: 1, TID: d, Args: args,
		})
	}
	// Stable presentation: Perfetto sorts internally, but a deterministic
	// byte stream makes traces diffable.
	sort.SliceStable(events, func(i, j int) bool { return events[i].TS < events[j].TS })
	out := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// --- Registry integration ---

// SetTrace installs (or, with nil, removes) the trace that StartSpan
// records into.
func (r *Registry) SetTrace(t *Trace) {
	if r == nil {
		return
	}
	r.trace.Store(t)
}

// TraceData returns the installed trace (nil when tracing is off).
func (r *Registry) TraceData() *Trace {
	if r == nil {
		return nil
	}
	return r.trace.Load()
}

// ActiveSpan returns the innermost running span of the installed trace —
// the aggregation target for instrumented layers (the SPICE solver) that
// are called without a context. Nil when tracing is off or no span is
// active; the disabled path is two atomic loads.
func (r *Registry) ActiveSpan() *Span {
	if r == nil {
		return nil
	}
	return r.trace.Load().Active()
}

// StartSpan starts an active span on the registry's trace, parented
// under the currently active span (or a new root). With no trace
// installed (or a nil registry) it returns nil without allocating.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return r.trace.Load().StartSpan(nil, name)
}

// --- Context plumbing ---

// spanKey is the context key spans travel under.
type spanKey struct{}

// ContextWithSpan returns ctx carrying the span. A nil span returns ctx
// unchanged (zero alloc), keeping disabled tracing free on the paths that
// thread contexts through the pipeline.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan starts a pipeline-stage span: a child of the span in ctx
// when one is there, else a span on reg's trace (parented under the
// trace's active span, or a new root). Either way the new span becomes
// the trace's active span until End. It returns the derived context
// carrying the new span plus the span itself; with tracing disabled
// everywhere it returns (ctx, nil) without allocating. End the returned
// span when the stage finishes.
func StartSpan(ctx context.Context, reg *Registry, name string) (context.Context, *Span) {
	if parent := SpanFromContext(ctx); parent != nil {
		s := parent.trace.StartSpan(parent, name)
		return ContextWithSpan(ctx, s), s
	}
	if s := reg.StartSpan(name); s != nil {
		return ContextWithSpan(ctx, s), s
	}
	return ctx, nil
}
