package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// MetricsHandler serves the registry in Prometheus text format. A nil
// registry serves an empty exposition.
//
//reprolint:ignore nilsafetelemetry the closure only calls WritePrometheus, which carries the nil guard; a nil registry serves an empty exposition
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// DebugServer is a live observability listener: /metrics in Prometheus
// text format plus the net/http/pprof endpoints under /debug/pprof/.
type DebugServer struct {
	srv *http.Server
	ln  net.Listener
}

// Addr returns the bound listen address (useful with ":0"), or "" on a
// nil server.
func (d *DebugServer) Addr() string {
	if d == nil {
		return ""
	}
	return d.ln.Addr().String()
}

// Close shuts the listener down (no-op on a nil server).
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	return d.srv.Close()
}

// ServeDebug starts the debug listener on addr (e.g. "localhost:6060")
// and serves until Close. It returns once the listener is bound, so
// /metrics is immediately scrapable.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.MetricsHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprintf(w, "repro debug server\n  /metrics\n  /debug/pprof/\n")
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: debug listener: %w", err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	//reprolint:ignore goroutinelife Serve returns when DebugServer.Close closes the listener; the handle owns the shutdown path
	go func() { _ = srv.Serve(ln) }()
	return &DebugServer{srv: srv, ln: ln}, nil
}
