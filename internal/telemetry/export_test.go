package telemetry

import (
	"math"
	"strings"
	"testing"
)

// TestPrometheusGolden locks the text exposition format byte for byte:
// TYPE lines, cumulative le buckets, _sum/_count, name sanitization and
// scope-then-name ordering. Scrapers parse this; accidental format
// drift is a break, not a cosmetic change.
func TestPrometheusGolden(t *testing.T) {
	r := New()
	s := r.Scope("spice")
	s.Counter("solves_total").Add(42)
	s.Gauge("vdd-volts").Set(1.0)
	h := s.Histogram("solve_seconds", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005) // le 0.001
	h.Observe(0.05)   // le 0.1
	h.Observe(3)      // +Inf overflow
	r.Scope("mc").Counter("samples_total").Add(7)

	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := `# TYPE repro_mc_samples_total counter
repro_mc_samples_total 7
# TYPE repro_spice_solve_seconds histogram
repro_spice_solve_seconds_bucket{le="0.001"} 1
repro_spice_solve_seconds_bucket{le="0.01"} 1
repro_spice_solve_seconds_bucket{le="0.1"} 2
repro_spice_solve_seconds_bucket{le="+Inf"} 3
repro_spice_solve_seconds_sum 3.0505
repro_spice_solve_seconds_count 3
# TYPE repro_spice_solve_seconds_p50 gauge
repro_spice_solve_seconds_p50 0.05500000000000001
# TYPE repro_spice_solve_seconds_p90 gauge
repro_spice_solve_seconds_p90 2.1300000000000003
# TYPE repro_spice_solve_seconds_p99 gauge
repro_spice_solve_seconds_p99 2.9129999999999994
# TYPE repro_spice_solves_total counter
repro_spice_solves_total 42
# TYPE repro_spice_vdd_volts gauge
repro_spice_vdd_volts 1
`
	if got := buf.String(); got != want {
		t.Fatalf("Prometheus exposition drifted.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestSnapshotSorted checks the table/export ordering contract.
func TestSnapshotSorted(t *testing.T) {
	r := New()
	r.Scope("z").Counter("a").Inc()
	r.Scope("a").Counter("z").Inc()
	r.Scope("a").Counter("b").Inc()
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d points, want 3", len(snap))
	}
	order := []string{"a/b", "a/z", "z/a"}
	for i, m := range snap {
		if got := m.Scope + "/" + m.Name; got != order[i] {
			t.Fatalf("snapshot[%d] = %s, want %s", i, got, order[i])
		}
	}
}

// TestWriteTable sanity-checks the human-readable dump the CLIs print.
func TestWriteTable(t *testing.T) {
	r := New()
	r.Scope("mc").Counter("samples_total").Add(100)
	h := r.Scope("mc").Histogram("chunk_seconds", ExpBuckets(1e-3, 10, 3))
	h.Observe(0.002)
	h.Observe(0.004)
	var buf strings.Builder
	r.WriteTable(&buf)
	out := buf.String()
	for _, want := range []string{"SCOPE", "samples_total", "100", "chunk_seconds", "n=2", "mean=0.003"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

// TestHistogramStats checks bucketing against hand-computed values,
// including boundary inclusivity (le semantics: v ≤ bound).
func TestHistogramStats(t *testing.T) {
	h := newHistogram([]float64{1, 10})
	for _, v := range []float64{0.5, 1.0, 5, 10.0, 11} {
		h.Observe(v)
	}
	bs := h.Buckets()
	if len(bs) != 3 {
		t.Fatalf("got %d buckets, want 3", len(bs))
	}
	// le=1 holds {0.5, 1.0}; le=10 holds {5, 10.0}; +Inf holds {11}.
	for i, want := range []int64{2, 2, 1} {
		if bs[i].Count != want {
			t.Fatalf("bucket %d count %d, want %d", i, bs[i].Count, want)
		}
	}
	if h.Count() != 5 || h.Min() != 0.5 || h.Max() != 11 {
		t.Fatalf("stats: count=%d min=%v max=%v", h.Count(), h.Min(), h.Max())
	}
	if got, want := h.Sum(), 0.5+1+5+10+11; got != want {
		t.Fatalf("sum %v, want %v", got, want)
	}
}

// TestHistogramQuantile checks the bucket-interpolated quantiles against
// hand-computed values.
func TestHistogramQuantile(t *testing.T) {
	var nilH *Histogram
	if !math.IsNaN(nilH.Quantile(0.5)) {
		t.Fatal("nil histogram quantile not NaN")
	}
	h := newHistogram([]float64{1, 2, 4})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile not NaN")
	}

	// 10 observations: 2 in (min..1], 5 in (1..2], 2 in (2..4], 1 overflow.
	for _, v := range []float64{0.2, 0.8, 1.1, 1.2, 1.5, 1.7, 1.9, 2.5, 3.5, 9} {
		h.Observe(v)
	}
	if !math.IsNaN(h.Quantile(math.NaN())) {
		t.Fatal("Quantile(NaN) not NaN")
	}
	if got := h.Quantile(0); got != 0.2 {
		t.Fatalf("q=0 → %v, want min 0.2", got)
	}
	if got := h.Quantile(1); got != 9.0 {
		t.Fatalf("q=1 → %v, want max 9", got)
	}
	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-12 }
	// p50: rank 5 lands in the (1..2] bucket (cum 2, count 5):
	// 1 + (2-1)·(5-2)/5 = 1.6.
	if got := h.Quantile(0.5); !approx(got, 1.6) {
		t.Fatalf("p50 = %v, want 1.6", got)
	}
	// p10: rank 1 in the first bucket, which spans [min, 1]:
	// 0.2 + (1-0.2)·(1/2) = 0.6.
	if got := h.Quantile(0.1); !approx(got, 0.6) {
		t.Fatalf("p10 = %v, want 0.6", got)
	}
	// p80: rank 8 in the (2..4] bucket (cum 7, count 2):
	// 2 + (4-2)·(8-7)/2 = 3.
	if got := h.Quantile(0.8); !approx(got, 3.0) {
		t.Fatalf("p80 = %v, want 3", got)
	}
	// p95: rank 9.5 in the overflow bucket, which spans [4, max]:
	// 4 + (9-4)·(9.5-9)/1 = 6.5.
	if got := h.Quantile(0.95); !approx(got, 6.5) {
		t.Fatalf("p95 = %v, want 6.5", got)
	}

	// Max inside a bounded bucket clamps the interpolation edge: one
	// observation of 1.5 in the (1..2] bucket must report p50 ≤ max.
	h2 := newHistogram([]float64{1, 2})
	h2.Observe(1.5)
	if got := h2.Quantile(0.5); got > 1.5 || got < 1 {
		t.Fatalf("single-observation p50 = %v, want within [1, 1.5]", got)
	}
}
