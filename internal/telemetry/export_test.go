package telemetry

import (
	"strings"
	"testing"
)

// TestPrometheusGolden locks the text exposition format byte for byte:
// TYPE lines, cumulative le buckets, _sum/_count, name sanitization and
// scope-then-name ordering. Scrapers parse this; accidental format
// drift is a break, not a cosmetic change.
func TestPrometheusGolden(t *testing.T) {
	r := New()
	s := r.Scope("spice")
	s.Counter("solves_total").Add(42)
	s.Gauge("vdd-volts").Set(1.0)
	h := s.Histogram("solve_seconds", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005) // le 0.001
	h.Observe(0.05)   // le 0.1
	h.Observe(3)      // +Inf overflow
	r.Scope("mc").Counter("samples_total").Add(7)

	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := `# TYPE repro_mc_samples_total counter
repro_mc_samples_total 7
# TYPE repro_spice_solve_seconds histogram
repro_spice_solve_seconds_bucket{le="0.001"} 1
repro_spice_solve_seconds_bucket{le="0.01"} 1
repro_spice_solve_seconds_bucket{le="0.1"} 2
repro_spice_solve_seconds_bucket{le="+Inf"} 3
repro_spice_solve_seconds_sum 3.0505
repro_spice_solve_seconds_count 3
# TYPE repro_spice_solves_total counter
repro_spice_solves_total 42
# TYPE repro_spice_vdd_volts gauge
repro_spice_vdd_volts 1
`
	if got := buf.String(); got != want {
		t.Fatalf("Prometheus exposition drifted.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestSnapshotSorted checks the table/export ordering contract.
func TestSnapshotSorted(t *testing.T) {
	r := New()
	r.Scope("z").Counter("a").Inc()
	r.Scope("a").Counter("z").Inc()
	r.Scope("a").Counter("b").Inc()
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d points, want 3", len(snap))
	}
	order := []string{"a/b", "a/z", "z/a"}
	for i, m := range snap {
		if got := m.Scope + "/" + m.Name; got != order[i] {
			t.Fatalf("snapshot[%d] = %s, want %s", i, got, order[i])
		}
	}
}

// TestWriteTable sanity-checks the human-readable dump the CLIs print.
func TestWriteTable(t *testing.T) {
	r := New()
	r.Scope("mc").Counter("samples_total").Add(100)
	h := r.Scope("mc").Histogram("chunk_seconds", ExpBuckets(1e-3, 10, 3))
	h.Observe(0.002)
	h.Observe(0.004)
	var buf strings.Builder
	r.WriteTable(&buf)
	out := buf.String()
	for _, want := range []string{"SCOPE", "samples_total", "100", "chunk_seconds", "n=2", "mean=0.003"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

// TestHistogramStats checks bucketing against hand-computed values,
// including boundary inclusivity (le semantics: v ≤ bound).
func TestHistogramStats(t *testing.T) {
	h := newHistogram([]float64{1, 10})
	for _, v := range []float64{0.5, 1.0, 5, 10.0, 11} {
		h.Observe(v)
	}
	bs := h.Buckets()
	if len(bs) != 3 {
		t.Fatalf("got %d buckets, want 3", len(bs))
	}
	// le=1 holds {0.5, 1.0}; le=10 holds {5, 10.0}; +Inf holds {11}.
	for i, want := range []int64{2, 2, 1} {
		if bs[i].Count != want {
			t.Fatalf("bucket %d count %d, want %d", i, bs[i].Count, want)
		}
	}
	if h.Count() != 5 || h.Min() != 0.5 || h.Max() != 11 {
		t.Fatalf("stats: count=%d min=%v max=%v", h.Count(), h.Min(), h.Max())
	}
	if got, want := h.Sum(), 0.5+1+5+10+11; got != want {
		t.Fatalf("sum %v, want %v", got, want)
	}
}
