package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/wire"
)

// Watchdog evaluates a run's streamed telemetry against the same
// statistical health thresholds the end-of-run RunReport applies — but
// mid-run, while there is still time to kill a doomed job. It
// subscribes to the registry's event bus and watches four failure
// modes:
//
//	chain_stalled    the Gibbs chain's acceptance rate collapsed
//	                 ("gibbs.chain" events; report: stalled mixing)
//	weight_blowup    a single importance weight carries too much of the
//	                 running estimate ("progress" events; report:
//	                 max-weight fraction > 0.2)
//	newton_storm     the SPICE solver is living on its gmin/source
//	                 fallbacks (spice counters read at progress events)
//	executor_starved jobs are queued but nothing runs (jobs gauges,
//	                 sampled on the watchdog's own ticker)
//
// Each alert fires once per kind per watchdog: a typed "health.<kind>"
// event is emitted on the registry (sink + bus), the "health" metric
// scope is updated (alerts_total counter, per-kind 0/1 gauges — visible
// in /metrics), the alert is retained for the job-status API, and the
// optional OnAlert hook runs (the job layer uses it to dump the flight
// recorder). The watchdog only observes — it never cancels anything
// itself.
type Watchdog struct {
	reg *Registry
	cfg WatchdogConfig
	sub *Subscription

	alertsTotal *Counter

	mu      sync.Mutex
	active  map[string]Alert // guarded by mu
	starved int              // consecutive ticker checks that looked starved

	stop chan struct{}
	done chan struct{}
}

// Alert is one triggered health condition.
type Alert struct {
	// Kind is the condition identifier ("chain_stalled", "weight_blowup",
	// "newton_storm", "executor_starved").
	Kind string `json:"kind"`
	// Detail is the human-readable explanation with the measured values.
	Detail string `json:"detail"`
	// Seq is the bus sequence number of the event that triggered the
	// alert (-1 for ticker-driven checks).
	Seq int64 `json:"seq"`
}

// WatchdogConfig tunes the alert thresholds. The zero value selects the
// RunReport-aligned defaults noted per field.
type WatchdogConfig struct {
	// MinChainAcceptance flags a Gibbs chain whose acceptance (resampled
	// updates / total updates) fell below this once MinChainUpdates
	// updates accumulated. Default 0.02 acceptance after 100 updates.
	MinChainAcceptance float64
	MinChainUpdates    int
	// MaxWeightFrac flags a second stage where one importance weight
	// carries more than this fraction of the running estimate, once
	// MinWeightSamples samples accumulated. Default 0.2 (the RunReport
	// warning threshold) after 500 samples (the library's minStage2).
	MaxWeightFrac    float64
	MinWeightSamples int
	// MaxFallbackRatio flags a solver where more than this fraction of
	// DC solves needed a gmin/source fallback, once MinSolves solves
	// accumulated. Default 0.5 after 256 solves.
	MaxFallbackRatio float64
	MinSolves        int64
	// Tick is the period of the watchdog's own clock, driving checks
	// that have no event to ride on (executor starvation). Default 1s.
	Tick time.Duration
	// StarvationTicks is how many consecutive ticks must look starved
	// (queued jobs with zero running) before the alert fires; the
	// hysteresis keeps the executor's pickup latency from alerting.
	// Default 3.
	StarvationTicks int
	// OnAlert, when set, runs synchronously on the watchdog goroutine
	// for each newly fired alert — the flight-recorder dump hook.
	OnAlert func(Alert)
}

// withDefaults fills the zero fields.
func (c WatchdogConfig) withDefaults() WatchdogConfig {
	if c.MinChainAcceptance <= 0 {
		c.MinChainAcceptance = 0.02
	}
	if c.MinChainUpdates <= 0 {
		c.MinChainUpdates = 100
	}
	if c.MaxWeightFrac <= 0 {
		c.MaxWeightFrac = 0.2
	}
	if c.MinWeightSamples <= 0 {
		c.MinWeightSamples = 500
	}
	if c.MaxFallbackRatio <= 0 {
		c.MaxFallbackRatio = 0.5
	}
	if c.MinSolves <= 0 {
		c.MinSolves = 256
	}
	if c.Tick <= 0 {
		c.Tick = time.Second
	}
	if c.StarvationTicks <= 0 {
		c.StarvationTicks = 3
	}
	return c
}

// StartWatchdog subscribes a new watchdog to reg's event bus and starts
// its evaluation goroutine. It returns nil — a fully inert watchdog —
// when reg is nil or has no bus installed, so callers can wire it
// unconditionally. Stop it when the run ends.
func StartWatchdog(reg *Registry, cfg WatchdogConfig) *Watchdog {
	bus := reg.Bus()
	if bus == nil {
		return nil
	}
	w := &Watchdog{
		reg:         reg,
		cfg:         cfg.withDefaults(),
		sub:         bus.Subscribe(256),
		alertsTotal: reg.Scope(wire.ScopeHealth).Counter("alerts_total"),
		active:      make(map[string]Alert),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	go w.loop()
	return w
}

// Stop unsubscribes and waits for the evaluation goroutine to exit.
// Idempotent-enough for the single-owner job layer; nil-safe.
func (w *Watchdog) Stop() {
	if w == nil {
		return
	}
	select {
	case <-w.stop:
	default:
		close(w.stop)
	}
	w.sub.Close()
	<-w.done
}

// Alerts returns the fired alerts sorted by kind (nil when healthy).
func (w *Watchdog) Alerts() []Alert {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.active) == 0 {
		return nil
	}
	out := make([]Alert, 0, len(w.active))
	for _, a := range w.active {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// loop consumes bus events and ticker ticks until Stop.
func (w *Watchdog) loop() {
	defer close(w.done)
	ticker := time.NewTicker(w.cfg.Tick)
	defer ticker.Stop()
	events := w.sub.Events()
	for {
		select {
		case <-w.stop:
			return
		case ev, ok := <-events:
			if !ok {
				// Bus closed under us (job teardown): keep the
				// ticker-driven checks until Stop (a nil channel never
				// receives, so the select just stops seeing events).
				events = nil
				continue
			}
			w.observe(ev)
		case <-ticker.C:
			w.checkStarvation()
			w.checkNewtonStorm(-1)
		}
	}
}

// observe evaluates one streamed event.
func (w *Watchdog) observe(ev Event) {
	switch ev.Name {
	case wire.EvGibbsChain:
		updates, _ := numField(ev.Fields, "updates")
		acceptance, okA := numField(ev.Fields, "acceptance")
		if okA && int(updates) >= w.cfg.MinChainUpdates && acceptance < w.cfg.MinChainAcceptance {
			w.fire(Alert{
				Kind: wire.AlertChainStalled,
				Detail: fmt.Sprintf("Gibbs chain acceptance %.4f below %.4f after %d updates — the chain is not mixing",
					acceptance, w.cfg.MinChainAcceptance, int(updates)),
				Seq: ev.Seq,
			})
		}
	case wire.EvProgress:
		n, _ := numField(ev.Fields, "n")
		frac, okF := numField(ev.Fields, "max_weight_frac")
		if okF && int(n) >= w.cfg.MinWeightSamples && frac > w.cfg.MaxWeightFrac {
			w.fire(Alert{
				Kind: wire.AlertWeightBlowup,
				Detail: fmt.Sprintf("a single importance weight carries %.0f%% of the running estimate after %d samples (threshold %.0f%%)",
					100*frac, int(n), 100*w.cfg.MaxWeightFrac),
				Seq: ev.Seq,
			})
		}
		w.checkNewtonStorm(ev.Seq)
	}
}

// checkNewtonStorm reads the solver counters: a solve population living
// on its convergence fallbacks signals a metric pushed outside the
// region where warm starts and plain Newton hold.
func (w *Watchdog) checkNewtonStorm(seq int64) {
	s := w.reg.Scope(wire.ScopeSpice)
	solves := s.Counter("solves_total").Value()
	if solves < w.cfg.MinSolves {
		return
	}
	falls := s.Counter("fallback_gmin_total").Value() + s.Counter("fallback_source_total").Value()
	if ratio := float64(falls) / float64(solves); ratio > w.cfg.MaxFallbackRatio {
		w.fire(Alert{
			Kind: wire.AlertNewtonStorm,
			Detail: fmt.Sprintf("%.0f%% of %d DC solves needed gmin/source fallbacks (threshold %.0f%%)",
				100*ratio, solves, 100*w.cfg.MaxFallbackRatio),
			Seq: seq,
		})
	}
}

// checkStarvation fires when jobs sit queued with no executor making
// progress for StarvationTicks consecutive ticks.
func (w *Watchdog) checkStarvation() {
	s := w.reg.Scope(wire.ScopeJobs)
	queued := s.Gauge("queue_depth").Value()
	running := s.Gauge("running").Value()
	// Both gauges hold whole counts; < 1 avoids exact float comparison.
	if queued >= 1 && running < 1 {
		w.starved++
	} else {
		w.starved = 0
	}
	if w.starved >= w.cfg.StarvationTicks {
		w.fire(Alert{
			Kind: wire.AlertExecutorStarved,
			Detail: fmt.Sprintf("%d jobs queued with no executor running for %v",
				int(queued), time.Duration(w.starved)*w.cfg.Tick),
			Seq: -1,
		})
	}
}

// fire records an alert the first time its kind triggers: health scope
// metrics, a typed health.<kind> event, and the OnAlert hook.
func (w *Watchdog) fire(a Alert) {
	w.mu.Lock()
	if _, seen := w.active[a.Kind]; seen {
		w.mu.Unlock()
		return
	}
	w.active[a.Kind] = a
	w.mu.Unlock()

	w.alertsTotal.Inc()
	w.reg.Scope(wire.ScopeHealth).Gauge(a.Kind).Set(1)
	w.reg.Emit(wire.EvHealthPrefix+a.Kind, map[string]any{
		"kind": a.Kind, "detail": a.Detail, "trigger_seq": a.Seq,
	})
	if w.cfg.OnAlert != nil {
		w.cfg.OnAlert(a)
	}
}

// numField extracts a numeric event field, tolerating the int/int64/
// float64 mix the instrumentation layers publish.
func numField(fields map[string]any, key string) (float64, bool) {
	switch v := fields[key].(type) {
	case float64:
		return v, true
	case int:
		return float64(v), true
	case int64:
		return float64(v), true
	}
	return 0, false
}
