// Package telemetry is the run-observability core of the library: an
// allocation-conscious metrics registry (atomic counters, gauges,
// lock-free histograms, monotonic stopwatches) with named scopes, plus a
// structured run-event sink that streams JSONL to an io.Writer.
//
// Everything is nil-safe and off by default: a nil *Registry (and every
// handle derived from one) turns all recording operations into no-ops,
// so instrumented hot paths pay only a nil check when telemetry is
// disabled and a single atomic operation when it is enabled. Telemetry
// only observes — it never draws from an RNG or alters control flow — so
// enabling it cannot change an estimate.
//
// The package is stdlib-only. Metrics are exported three ways: a
// human-readable snapshot table (WriteTable), Prometheus text exposition
// format (WritePrometheus, also served over HTTP by ServeDebug next to
// net/http/pprof), and structured JSONL events (EventSink).
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is the root of a telemetry namespace: a set of named scopes,
// each holding named counters, gauges and histograms, plus an optional
// event sink. All methods are safe for concurrent use and safe on a nil
// receiver (they no-op).
type Registry struct {
	start time.Time
	sink  atomic.Pointer[EventSink]

	// bus carries the optional live event bus (see bus.go): when
	// installed, every Emit is also published to it.
	bus atomic.Pointer[Bus]

	// trace carries the optional span-tracing layer (see span.go).
	trace atomic.Pointer[Trace]

	mu     sync.RWMutex
	scopes map[string]*Scope // guarded by mu
}

// New returns an empty enabled registry.
func New() *Registry {
	return &Registry{start: time.Now(), scopes: make(map[string]*Scope)}
}

// Enabled reports whether the registry records anything (i.e. is
// non-nil). Instrumented code can use it to skip building event payloads.
func (r *Registry) Enabled() bool { return r != nil }

// Uptime returns the monotonic time since New.
func (r *Registry) Uptime() time.Duration {
	if r == nil {
		return 0
	}
	return time.Since(r.start)
}

// Scope returns the named scope, creating it on first use. A nil
// registry returns a nil scope, whose metric constructors in turn return
// nil handles — the whole chain stays no-op.
func (r *Registry) Scope(name string) *Scope {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	s := r.scopes[name]
	r.mu.RUnlock()
	if s != nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s = r.scopes[name]; s == nil {
		s = &Scope{
			name:     name,
			counters: make(map[string]*Counter),
			gauges:   make(map[string]*Gauge),
			hists:    make(map[string]*Histogram),
		}
		r.scopes[name] = s
	}
	return s
}

// SetSink installs (or, with nil, removes) the event sink that Emit
// writes to. Multiple registries may share one sink; its sequence
// numbers then order events across all of them.
func (r *Registry) SetSink(s *EventSink) {
	if r == nil {
		return
	}
	r.sink.Store(s)
}

// Sink returns the installed event sink, or nil. Use it to share one
// JSONL stream with another registry (SetSink on the other side).
func (r *Registry) Sink() *EventSink {
	if r == nil {
		return nil
	}
	return r.sink.Load()
}

// SetBus installs (or, with nil, removes) the live event bus that Emit
// publishes to alongside the sink. The registry does not own the bus —
// closing it (and dumping its flight ring) stays the caller's job.
func (r *Registry) SetBus(b *Bus) {
	if r == nil {
		return
	}
	r.bus.Store(b)
}

// Bus returns the installed event bus, or nil.
func (r *Registry) Bus() *Bus {
	if r == nil {
		return nil
	}
	return r.bus.Load()
}

// Emit writes one structured event to the installed sink and publishes
// it on the installed bus (no-op without either). Keys "seq", "t_ms"
// and "event" are reserved for the envelope; fields must not be mutated
// after the call when a bus is installed.
func (r *Registry) Emit(event string, fields map[string]any) {
	if r == nil {
		return
	}
	if s := r.sink.Load(); s != nil {
		s.Emit(event, fields)
	}
	if b := r.bus.Load(); b != nil {
		b.Publish(event, fields)
	}
}

// DropScope removes the named scope and every metric in it from the
// registry, so exports (Snapshot, WritePrometheus, WriteTable) no
// longer mention it. Existing handles into the scope keep working —
// they just record into a detached scope — so dropping is always safe,
// merely invisible. Used to unregister per-job metrics when a finished
// job is removed from the job registry.
func (r *Registry) DropScope(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.scopes, name)
}

// scopeNames returns the scope names in sorted order.
func (r *Registry) scopeNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.scopes))
	for n := range r.scopes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Scope is a named metric namespace inside a Registry.
type Scope struct {
	name string

	mu       sync.RWMutex
	counters map[string]*Counter   // guarded by mu
	gauges   map[string]*Gauge     // guarded by mu
	hists    map[string]*Histogram // guarded by mu
}

// Counter returns the named counter, creating it on first use (nil on a
// nil scope). By Prometheus convention counter names end in "_total".
func (s *Scope) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	c := s.counters[name]
	s.mu.RUnlock()
	if c != nil {
		return c
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c = s.counters[name]; c == nil {
		c = &Counter{}
		s.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use (nil on a nil
// scope).
func (s *Scope) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	g := s.gauges[name]
	s.mu.RUnlock()
	if g != nil {
		return g
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if g = s.gauges[name]; g == nil {
		g = &Gauge{}
		s.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (nil on a nil scope). bounds must be
// sorted ascending; an implicit +Inf bucket is appended. Later calls
// with the same name reuse the existing histogram and ignore bounds.
func (s *Scope) Histogram(name string, bounds []float64) *Histogram {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	h := s.hists[name]
	s.mu.RUnlock()
	if h != nil {
		return h
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if h = s.hists[name]; h == nil {
		h = newHistogram(bounds)
		s.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing atomic count. The zero value is
// ready to use; all methods are nil-safe.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.Add(1)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically stored float64 level. The zero value is ready
// to use; all methods are nil-safe.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the stored level (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}
