package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro"
	"repro/internal/obslog"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// WorkerConfig configures RunWorker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// ID names this worker to the coordinator (required).
	ID string
	// Cores is reported to the coordinator for operator visibility
	// (informational; the evaluation pool is sized by the job spec).
	Cores int
	// PollInterval is the idle delay between polls (default 500ms).
	PollInterval time.Duration
	// Resolve maps workload names to metrics; nil selects
	// repro.WorkloadByName. Tests inject synthetic workloads.
	Resolve func(workload string) (repro.Metric, error)
	// Registry, when non-nil, receives worker metrics under scope
	// "worker", hosts the per-lease trace whose spans upload with each
	// result, and — when it carries a bus — sources the health.* alerts
	// forwarded to the coordinator on renewals.
	Registry *telemetry.Registry
	// Client, when non-nil, overrides the HTTP client.
	Client *http.Client
	// Log, when non-nil, receives structured records for the worker's
	// lease lifecycle with job/lease/trace correlation fields.
	Log *obslog.Logger
}

// RunWorker polls the coordinator for leases and processes them until
// ctx ends, returning ctx's error. Each lease replays the job's
// deterministic prefix, evaluates the leased range, and uploads the
// partial statistics; a renewal heartbeat keeps the lease alive for as
// long as the evaluation runs, and a lost lease (coordinator handed the
// range to someone else) aborts the evaluation mid-chunk.
//
// Every lease is evaluated under the trace context it granted: the
// worker records its own span tree for the evaluation, estimates its
// clock offset to the coordinator from poll/renew round trips, and
// uploads both with the result so the coordinator can stitch one
// cluster-wide trace. Renewals carry the worker's metrics snapshot and
// recent health alerts — the metrics-federation heartbeat.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	if cfg.ID == "" {
		return errors.New("dist: worker needs an ID")
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 500 * time.Millisecond
	}
	if cfg.Resolve == nil {
		cfg.Resolve = repro.WorkloadByName
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	w := &worker{cfg: cfg, log: cfg.Log.With("component", "worker", "worker", cfg.ID)}
	scope := cfg.Registry.Scope(wire.ScopeWorker)
	w.leases = scope.Counter("leases_total")
	w.completed = scope.Counter("leases_completed_total")
	w.failures = scope.Counter("leases_failed_total")
	w.lost = scope.Counter("leases_lost_total")
	// The health subscription sources the alerts renewals forward: the
	// worker daemon's watchdog publishes health.* on the registry bus.
	w.healthSub = cfg.Registry.Bus().Subscribe(64)
	defer w.healthSub.Close()
	w.log.Info("worker polling", "coordinator", cfg.Coordinator, "cores", cfg.Cores)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		lease, err := w.poll(ctx)
		if err != nil || lease == nil {
			// Coordinator unreachable or idle: wait one interval.
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(cfg.PollInterval):
			}
			continue
		}
		w.process(ctx, lease)
	}
}

type worker struct {
	cfg                               WorkerConfig
	log                               *obslog.Logger
	leases, completed, failures, lost *telemetry.Counter
	// clock accumulates round-trip offset samples against the
	// coordinator's wall clock (poll and renew responses).
	clock telemetry.ClockSync
	// healthSub and alerts collect the registry bus's health.* events
	// between heartbeats. Both are touched only from the lease loop and
	// its renew goroutine, never concurrently (the renew loop is joined
	// before the next lease starts).
	healthSub *telemetry.Subscription
	alerts    []HealthAlert
}

// maxHeldAlerts bounds the re-sent alert window; the coordinator dedups
// by UnixUS, so re-sending recent alerts every heartbeat is idempotent.
const maxHeldAlerts = 16

// drainAlerts moves pending health.* events off the bus subscription
// into the held-alert window, stamping each with the worker's wall
// clock (the coordinator's forward-once cursor).
func (w *worker) drainAlerts() {
	for {
		select {
		case ev, ok := <-w.healthSub.Events():
			if !ok {
				return
			}
			if !strings.HasPrefix(ev.Name, wire.EvHealthPrefix) {
				continue
			}
			a := HealthAlert{
				Kind:   strings.TrimPrefix(ev.Name, wire.EvHealthPrefix),
				UnixUS: time.Now().UnixMicro(),
			}
			if d, _ := ev.Fields["detail"].(string); d != "" {
				a.Detail = d
			}
			w.alerts = append(w.alerts, a)
			if len(w.alerts) > maxHeldAlerts {
				w.alerts = w.alerts[len(w.alerts)-maxHeldAlerts:]
			}
		default:
			return
		}
	}
}

// heartbeat builds the federation payload renewals carry: the sanitized
// registry snapshot plus the held alert window.
func (w *worker) heartbeat() RenewRequest {
	w.drainAlerts()
	return RenewRequest{
		Metrics: WirePoints(w.cfg.Registry.Snapshot()),
		Alerts:  append([]HealthAlert(nil), w.alerts...),
	}
}

// poll asks for a lease; nil without error means no work. A granted
// lease's response carries the coordinator's wall clock, which —
// bracketed by the request round trip — feeds the clock-offset
// estimate.
func (w *worker) poll(ctx context.Context) (*Lease, error) {
	var lease Lease
	send := time.Now().UnixMicro()
	status, err := w.post(ctx, "/v1/dist/poll", PollRequest{
		Worker: WorkerInfo{ID: w.cfg.ID, Cores: w.cfg.Cores},
	}, &lease)
	recv := time.Now().UnixMicro()
	if err != nil {
		return nil, err
	}
	if status == http.StatusNoContent {
		return nil, nil
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("dist: poll status %d", status)
	}
	if lease.CoordUnixUS != 0 {
		w.clock.Observe(send, recv, lease.CoordUnixUS)
	}
	return &lease, nil
}

// process evaluates one lease end to end.
func (w *worker) process(ctx context.Context, lease *Lease) {
	w.leases.Inc()
	// The lease context dies with the session, and also when the
	// renewal loop discovers the lease was lost — which aborts the
	// estimation at its next chunk boundary instead of wasting the
	// remaining work.
	leaseCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	renewDone := make(chan struct{})
	go func() {
		defer close(renewDone)
		w.renewLoop(leaseCtx, cancel, lease)
	}()
	defer func() { cancel(); <-renewDone }()

	// The worker's half of the stitched trace: a fresh per-lease trace
	// on the registry, rooted in a span carrying the granted context.
	// Leases are processed sequentially, so swapping the registry's
	// trace per lease is safe.
	tr := telemetry.NewTrace()
	w.cfg.Registry.SetTrace(tr)
	defer w.cfg.Registry.SetTrace(nil)
	root := tr.StartSpan(nil, "worker.lease")
	root.SetAttr("worker", w.cfg.ID)
	root.SetAttr("lease", lease.ID)
	root.SetAttr("job", lease.Job)
	root.SetAttr("traceparent", lease.Trace.Traceparent())
	root.SetAttr("lo", lease.Range.Lo)
	root.SetAttr("hi", lease.Range.Hi)
	// A separate variable: the renewal goroutine above still reads
	// leaseCtx, so reassigning it here would race.
	runCtx := telemetry.ContextWithSpan(leaseCtx, root)

	log := w.log.With("job", lease.Job, "lease", lease.ID, "trace", lease.Trace.TraceID)
	log.Debug("lease granted", "lo", lease.Range.Lo, "hi", lease.Range.Hi)
	w.cfg.Registry.Emit(wire.EvWorkerLeaseStart, map[string]any{
		"job": lease.Job, "lease": lease.ID, "trace": lease.Trace.TraceID,
		"lo": lease.Range.Lo, "hi": lease.Range.Hi,
	})

	metric, err := w.cfg.Resolve(lease.Spec.Workload)
	if err == nil {
		var run *repro.PartialRun
		opts := lease.Spec.Options()
		opts.Telemetry = w.cfg.Registry
		run, err = repro.EstimatePartial(runCtx, metric, opts, []repro.ShardRange{lease.Range})
		if err == nil {
			root.End()
			up := ResultUpload{PrefixDigest: run.Prefix.Digest(), Chunks: run.Chunks}
			if lease.NeedPrefix {
				up.Prefix = &run.Prefix
			}
			up.Spans = tr.Snapshot()
			up.TraceStartUnixUS = tr.StartUnixUS()
			up.ClockOffsetUS, _ = w.clock.OffsetUS()
			up.ClockRTTUS = w.clock.RTTUS()
			up.Metrics = WirePoints(w.cfg.Registry.Snapshot())
			status, postErr := w.post(ctx, "/v1/dist/leases/"+lease.ID+"/result", up, nil)
			switch {
			case postErr != nil:
				err = postErr
			case status == http.StatusOK:
				w.completed.Inc()
				w.cfg.Registry.Emit(wire.EvWorkerLeaseDone, map[string]any{
					"job": lease.Job, "lease": lease.ID, "spans": len(up.Spans),
				})
				log.Debug("lease completed", "spans", len(up.Spans),
					"clock_offset_us", up.ClockOffsetUS, "clock_rtt_us", up.ClockRTTUS)
				return
			default:
				err = fmt.Errorf("dist: result upload status %d", status)
			}
		}
	}
	root.End()
	// The coordinator requeues the range; a lost lease (cancelled
	// leaseCtx, 410 upload) needs no report.
	if ctx.Err() == nil && leaseCtx.Err() == nil {
		w.failures.Inc()
		w.cfg.Registry.Emit(wire.EvWorkerLeaseFailed, map[string]any{
			"job": lease.Job, "lease": lease.ID, "error": err.Error(),
		})
		log.Warn("lease failed", "error", err.Error())
		w.post(ctx, "/v1/dist/leases/"+lease.ID+"/fail", FailUpload{Error: err.Error()}, nil)
	} else {
		w.lost.Inc()
		w.cfg.Registry.Emit(wire.EvWorkerLeaseLost, map[string]any{
			"job": lease.Job, "lease": lease.ID,
		})
		log.Warn("lease lost")
	}
}

// renewLoop heartbeats the lease at a third of its TTL; a 410 means the
// lease was reassigned, so the evaluation is cancelled. Each beat
// carries the federation payload and returns a clock-offset sample.
func (w *worker) renewLoop(ctx context.Context, cancel context.CancelFunc, lease *Lease) {
	ttl := time.Duration(lease.TTLSeconds * float64(time.Second))
	period := max(ttl/3, 10*time.Millisecond)
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			var resp RenewResponse
			send := time.Now().UnixMicro()
			status, err := w.post(ctx, "/v1/dist/leases/"+lease.ID+"/renew", w.heartbeat(), &resp)
			recv := time.Now().UnixMicro()
			if err == nil && status == http.StatusGone {
				cancel()
				return
			}
			if err == nil && status == http.StatusOK && resp.CoordUnixUS != 0 {
				w.clock.Observe(send, recv, resp.CoordUnixUS)
			}
			// Transient errors are fine — the TTL absorbs a missed beat.
		}
	}
}

// post sends a JSON request and decodes a 2xx body into out (when
// non-nil), returning the status code.
func (w *worker) post(ctx context.Context, path string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}
