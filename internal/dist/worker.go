package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro"
	"repro/internal/telemetry"
)

// WorkerConfig configures RunWorker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// ID names this worker to the coordinator (required).
	ID string
	// Cores is reported to the coordinator for operator visibility
	// (informational; the evaluation pool is sized by the job spec).
	Cores int
	// PollInterval is the idle delay between polls (default 500ms).
	PollInterval time.Duration
	// Resolve maps workload names to metrics; nil selects
	// repro.WorkloadByName. Tests inject synthetic workloads.
	Resolve func(workload string) (repro.Metric, error)
	// Registry, when non-nil, receives worker metrics under scope
	// "worker".
	Registry *telemetry.Registry
	// Client, when non-nil, overrides the HTTP client.
	Client *http.Client
}

// RunWorker polls the coordinator for leases and processes them until
// ctx ends, returning ctx's error. Each lease replays the job's
// deterministic prefix, evaluates the leased range, and uploads the
// partial statistics; a renewal heartbeat keeps the lease alive for as
// long as the evaluation runs, and a lost lease (coordinator handed the
// range to someone else) aborts the evaluation mid-chunk.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	if cfg.ID == "" {
		return errors.New("dist: worker needs an ID")
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 500 * time.Millisecond
	}
	if cfg.Resolve == nil {
		cfg.Resolve = repro.WorkloadByName
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	w := &worker{cfg: cfg}
	scope := cfg.Registry.Scope("worker")
	w.leases = scope.Counter("leases_total")
	w.completed = scope.Counter("leases_completed_total")
	w.failures = scope.Counter("leases_failed_total")
	w.lost = scope.Counter("leases_lost_total")
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		lease, err := w.poll(ctx)
		if err != nil || lease == nil {
			// Coordinator unreachable or idle: wait one interval.
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(cfg.PollInterval):
			}
			continue
		}
		w.process(ctx, lease)
	}
}

type worker struct {
	cfg                               WorkerConfig
	leases, completed, failures, lost *telemetry.Counter
}

// poll asks for a lease; nil without error means no work.
func (w *worker) poll(ctx context.Context) (*Lease, error) {
	var lease Lease
	status, err := w.post(ctx, "/v1/dist/poll", PollRequest{
		Worker: WorkerInfo{ID: w.cfg.ID, Cores: w.cfg.Cores},
	}, &lease)
	if err != nil {
		return nil, err
	}
	if status == http.StatusNoContent {
		return nil, nil
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("dist: poll status %d", status)
	}
	return &lease, nil
}

// process evaluates one lease end to end.
func (w *worker) process(ctx context.Context, lease *Lease) {
	w.leases.Inc()
	// The lease context dies with the session, and also when the
	// renewal loop discovers the lease was lost — which aborts the
	// estimation at its next chunk boundary instead of wasting the
	// remaining work.
	leaseCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	renewDone := make(chan struct{})
	go func() {
		defer close(renewDone)
		w.renewLoop(leaseCtx, cancel, lease)
	}()
	defer func() { cancel(); <-renewDone }()

	metric, err := w.cfg.Resolve(lease.Spec.Workload)
	if err == nil {
		var run *repro.PartialRun
		opts := lease.Spec.Options()
		opts.Telemetry = w.cfg.Registry
		run, err = repro.EstimatePartial(leaseCtx, metric, opts, []repro.ShardRange{lease.Range})
		if err == nil {
			up := ResultUpload{PrefixDigest: run.Prefix.Digest(), Chunks: run.Chunks}
			if lease.NeedPrefix {
				up.Prefix = &run.Prefix
			}
			status, postErr := w.post(ctx, "/v1/dist/leases/"+lease.ID+"/result", up, nil)
			switch {
			case postErr != nil:
				err = postErr
			case status == http.StatusOK:
				w.completed.Inc()
				return
			default:
				err = fmt.Errorf("dist: result upload status %d", status)
			}
		}
	}
	// The coordinator requeues the range; a lost lease (cancelled
	// leaseCtx, 410 upload) needs no report.
	if ctx.Err() == nil && leaseCtx.Err() == nil {
		w.failures.Inc()
		w.post(ctx, "/v1/dist/leases/"+lease.ID+"/fail", FailUpload{Error: err.Error()}, nil)
	} else {
		w.lost.Inc()
	}
}

// renewLoop heartbeats the lease at a third of its TTL; a 410 means the
// lease was reassigned, so the evaluation is cancelled.
func (w *worker) renewLoop(ctx context.Context, cancel context.CancelFunc, lease *Lease) {
	ttl := time.Duration(lease.TTLSeconds * float64(time.Second))
	period := max(ttl/3, 10*time.Millisecond)
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			status, err := w.post(ctx, "/v1/dist/leases/"+lease.ID+"/renew", struct{}{}, nil)
			if err == nil && status == http.StatusGone {
				cancel()
				return
			}
			// Transient errors are fine — the TTL absorbs a missed beat.
		}
	}
}

// post sends a JSON request and decodes a 2xx body into out (when
// non-nil), returning the status code.
func (w *worker) post(ctx context.Context, path string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}
