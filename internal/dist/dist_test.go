package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/jobs"
	"repro/internal/surrogate"
	"repro/internal/telemetry"
)

// spinMetric burns CPU per evaluation so a distributed job runs long
// enough to lose a worker mid-flight.
type spinMetric struct {
	m    repro.Metric
	spin int
}

func (s *spinMetric) Dim() int { return s.m.Dim() }
func (s *spinMetric) Value(x []float64) float64 {
	v := 1.0
	for i := 0; i < s.spin; i++ {
		v = math.Sqrt(v + float64(i))
	}
	if v < 0 {
		panic("unreachable")
	}
	return s.m.Value(x)
}

func testResolve(name string) (repro.Metric, error) {
	lin := &surrogate.Linear{W: []float64{1, 1}, B: 4.5}
	switch name {
	case "lin":
		return lin, nil
	case "slow":
		return &spinMetric{m: lin, spin: 15000}, nil
	}
	return nil, fmt.Errorf("test: unknown workload %q", name)
}

// harness wires a manager, a coordinator and an httptest server the way
// sramserverd does.
type harness struct {
	mgr   *jobs.Manager
	coord *Coordinator
	srv   *httptest.Server
	reg   *telemetry.Registry
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	reg := telemetry.New()
	cfg.Registry = reg
	coord := NewCoordinator(cfg)
	mgr := jobs.NewManager(jobs.Config{
		Resolve:     testResolve,
		Registry:    reg,
		Executors:   4,
		Distributor: coord.Run,
	})
	mux := http.NewServeMux()
	mux.Handle("/v1/dist/", coord.Handler())
	mux.Handle("/v1/cluster", coord.Handler())
	mux.Handle("/", jobs.Handler(mgr))
	srv := httptest.NewServer(mux)
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		mgr.Drain(ctx)
		coord.Stop()
	})
	return &harness{mgr: mgr, coord: coord, srv: srv, reg: reg}
}

// startWorkers launches n in-process workers against the harness and
// returns their individual cancel functions.
func (h *harness) startWorkers(t *testing.T, n int) []context.CancelFunc {
	t.Helper()
	cancels := make([]context.CancelFunc, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancels[i] = cancel
		wg.Add(1)
		go func(i int, ctx context.Context) {
			defer wg.Done()
			RunWorker(ctx, WorkerConfig{
				Coordinator:  h.srv.URL,
				ID:           fmt.Sprintf("w%d", i),
				Resolve:      testResolve,
				PollInterval: 5 * time.Millisecond,
				Registry:     telemetry.New(),
			})
		}(i, ctx)
	}
	t.Cleanup(func() {
		for _, c := range cancels {
			c()
		}
		wg.Wait()
	})
	return cancels
}

// canonical renders a Result with wall-clock fields zeroed for exact
// comparison.
func canonical(t *testing.T, res *repro.Result) string {
	t.Helper()
	r := *res
	r.Stage1Seconds, r.Stage2Seconds = 0, 0
	if r.Report != nil {
		r.Report = r.Report.Deterministic()
	}
	b, err := json.Marshal(&r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func singleNode(t *testing.T, workload string, opts repro.Options) string {
	t.Helper()
	metric, err := testResolve(workload)
	if err != nil {
		t.Fatal(err)
	}
	res, err := repro.EstimateContext(context.Background(), metric, opts)
	if err != nil {
		t.Fatal(err)
	}
	return canonical(t, res)
}

func runDistributed(t *testing.T, h *harness, req jobs.Request) *jobs.Job {
	t.Helper()
	req.Distribute = true
	job, err := h.mgr.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-job.Done():
	case <-time.After(120 * time.Second):
		t.Fatal("distributed job did not finish")
	}
	if err := job.Err(); err != nil {
		t.Fatalf("distributed job failed: %v", err)
	}
	return job
}

// A distributed run is byte-identical to the single-node estimate, for
// every method that shards and at several worker counts.
func TestDistributedBitIdentical(t *testing.T) {
	reqs := []jobs.Request{
		{Workload: "lin", Method: "g-s", Seed: 21, K: 200, N: 3000},
		{Workload: "lin", Method: "g-c", Seed: 22, K: 200, N: 3000},
		{Workload: "lin", Method: "mis", Seed: 23, K: 400, N: 3000},
		{Workload: "lin", Method: "mnis", Seed: 24, K: 200, N: 3000},
		{Workload: "lin", Method: "mc", Seed: 25, N: 50000},
		{Workload: "lin", Method: "blockade", Seed: 26, K: 300, N: 20000},
		{Workload: "lin", Method: "subset", Seed: 27, N: 2000},
	}
	for _, workers := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			h := newHarness(t, Config{RangeTarget: 6, LeaseTTL: 5 * time.Second})
			h.startWorkers(t, workers)
			for _, req := range reqs {
				want := singleNode(t, req.Workload, req.Options())
				job := runDistributed(t, h, req)
				got := canonical(t, job.Result())
				if got != want {
					t.Fatalf("%s: distributed bytes differ\n got: %s\nwant: %s", req.Method, got, want)
				}
				if !job.Snapshot().Distributed {
					t.Fatalf("%s: snapshot not marked distributed", req.Method)
				}
			}
		})
	}
}

// workerStatuses fetches GET /v1/dist/workers.
func workerStatuses(t *testing.T, h *harness) []WorkerStatus {
	t.Helper()
	resp, err := http.Get(h.srv.URL + "/v1/dist/workers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ws []WorkerStatus
	if err := json.NewDecoder(resp.Body).Decode(&ws); err != nil {
		t.Fatal(err)
	}
	return ws
}

// Killing a worker mid-job loses nothing: its lease expires, the range
// is reassigned, and the result is still bit-identical.
func TestWorkerKillMidJob(t *testing.T) {
	h := newHarness(t, Config{RangeTarget: 8, LeaseTTL: 250 * time.Millisecond, MaxAttempts: 8})
	cancels := h.startWorkers(t, 2)

	req := jobs.Request{Workload: "slow", Method: "g-s", Seed: 31, K: 200, N: 4000}
	want := singleNode(t, req.Workload, req.Options())

	req.Distribute = true
	job, err := h.mgr.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	// Kill worker 0 the moment it holds a lease; the slow metric keeps
	// every range running far longer than this polling loop's latency,
	// so the cancellation lands mid-evaluation.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("worker 0 never took a lease")
		}
		var active int
		for _, w := range workerStatuses(t, h) {
			if w.ID == "w0" {
				active = w.Active
			}
		}
		if active > 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancels[0]()

	select {
	case <-job.Done():
	case <-time.After(120 * time.Second):
		t.Fatal("job did not survive the worker kill")
	}
	if err := job.Err(); err != nil {
		t.Fatalf("job failed after worker kill: %v", err)
	}
	if got := canonical(t, job.Result()); got != want {
		t.Fatalf("post-kill bytes differ\n got: %s\nwant: %s", got, want)
	}
	// The killed worker's lease must have been reclaimed by expiry, not
	// finished gracefully.
	var expired int64
	for _, w := range workerStatuses(t, h) {
		expired += w.Expired
	}
	if expired == 0 {
		t.Fatal("no lease expired — the kill did not land mid-lease")
	}
}

// Protocol-level checks: a worker whose replayed prefix disagrees with
// the job's is rejected with a 409 problem and its range requeued.
func TestPrefixDigestMismatch(t *testing.T) {
	h := newHarness(t, Config{RangeTarget: 4, LeaseTTL: 10 * time.Second, MaxAttempts: 10})
	req := jobs.Request{Workload: "lin", Method: "g-s", Seed: 41, K: 200, N: 2048, Distribute: true}
	job, err := h.mgr.Submit(req)
	if err != nil {
		t.Fatal(err)
	}

	post := func(path string, in any) (*http.Response, []byte) {
		t.Helper()
		b, _ := json.Marshal(in)
		resp, err := http.Post(h.srv.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}
	poll := func(worker string) *Lease {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			resp, body := post("/v1/dist/poll", PollRequest{Worker: WorkerInfo{ID: worker}})
			if resp.StatusCode == http.StatusOK {
				var l Lease
				if err := json.Unmarshal(body, &l); err != nil {
					t.Fatal(err)
				}
				return &l
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatal("no lease granted")
		return nil
	}
	evaluate := func(l *Lease) *repro.PartialRun {
		t.Helper()
		metric, _ := testResolve(l.Spec.Workload)
		run, err := repro.EstimatePartial(context.Background(), metric, l.Spec.Options(), []repro.ShardRange{l.Range})
		if err != nil {
			t.Fatal(err)
		}
		return run
	}

	// First range: honest upload fixes the job's prefix digest.
	l1 := poll("honest")
	run1 := evaluate(l1)
	resp, _ := post("/v1/dist/leases/"+l1.ID+"/result", ResultUpload{
		PrefixDigest: run1.Prefix.Digest(), Prefix: &run1.Prefix, Chunks: run1.Chunks,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("honest upload: status %d", resp.StatusCode)
	}

	// Second range: divergent digest → 409 problem, range requeued.
	l2 := poll("rogue")
	run2 := evaluate(l2)
	resp, body := post("/v1/dist/leases/"+l2.ID+"/result", ResultUpload{
		PrefixDigest: "deadbeef", Chunks: run2.Chunks,
	})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("rogue upload: status %d, body %s", resp.StatusCode, body)
	}
	var p jobs.Problem
	if err := json.Unmarshal(body, &p); err != nil || p.Type != jobs.ProblemType+"prefix-mismatch" {
		t.Fatalf("rogue problem: %s (err %v)", body, err)
	}

	// A stale lease ID is gone.
	resp, _ = post("/v1/dist/leases/"+l2.ID+"/result", ResultUpload{PrefixDigest: run2.Prefix.Digest()})
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("stale lease: status %d", resp.StatusCode)
	}

	// Honest workers finish the job — including the requeued range.
	h.startWorkers(t, 2)
	select {
	case <-job.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("job did not recover from the rogue worker")
	}
	if err := job.Err(); err != nil {
		t.Fatal(err)
	}
	want := singleNode(t, "lin", jobs.Request{Workload: "lin", Method: "g-s", Seed: 41, K: 200, N: 2048}.Options())
	if got := canonical(t, job.Result()); got != want {
		t.Fatalf("recovered bytes differ\n got: %s\nwant: %s", got, want)
	}
}

// The worker registry reports health and throughput per worker.
func TestWorkerRegistry(t *testing.T) {
	h := newHarness(t, Config{RangeTarget: 4})
	h.startWorkers(t, 2)
	runDistributed(t, h, jobs.Request{Workload: "lin", Method: "g-s", Seed: 51, K: 200, N: 2000})

	resp, err := http.Get(h.srv.URL + "/v1/dist/workers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ws []WorkerStatus
	if err := json.NewDecoder(resp.Body).Decode(&ws); err != nil {
		t.Fatal(err)
	}
	if len(ws) == 0 {
		t.Fatal("no workers registered")
	}
	var samples, completed int64
	for _, w := range ws {
		samples += w.Samples
		completed += w.Completed
		if w.LastSeen == "" {
			t.Fatalf("worker %s has no last-seen time", w.ID)
		}
	}
	if samples != 2000 || completed == 0 {
		t.Fatalf("registry totals: samples %d, completed %d", samples, completed)
	}
}
