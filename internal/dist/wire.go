// Package dist shards estimation jobs across worker nodes over a
// pull-based HTTP/JSON lease protocol, with the coordinator embedded in
// sramserverd and workers running sramworkerd.
//
// The protocol is built on the library's replicated-prefix seam
// (repro.EstimatePartial / repro.FoldPartials): every worker replays a
// job's deterministic first stage locally and evaluates only the
// contiguous chunk-index range it holds a lease on, streaming back the
// range's partial statistics. The coordinator folds the partials in
// strict chunk-index order, so the final Result — report included — is
// bit-identical to a single-node run of the same options. Worker loss
// is handled by lease expiry: an unrenewed lease returns its range to
// the queue and another worker picks it up; prefix digests cross-check
// that every contributor computed the same first stage.
//
//	POST /v1/dist/poll               lease a range (204 when no work)
//	POST /v1/dist/leases/{id}/renew  extend a held lease (410 when lost)
//	POST /v1/dist/leases/{id}/result upload the range's partials
//	POST /v1/dist/leases/{id}/fail   report a failed range
//	GET  /v1/dist/workers            registered workers and their health
package dist

import (
	"repro"
	"repro/internal/jobs"
	"repro/internal/mc"
)

// WorkerInfo identifies a polling worker.
type WorkerInfo struct {
	// ID names the worker; every poll from the same ID accrues to the
	// same health record and per-worker metrics.
	ID string `json:"id"`
	// Cores is the worker's evaluation-pool size (informational).
	Cores int `json:"cores,omitempty"`
}

// PollRequest asks the coordinator for work.
type PollRequest struct {
	Worker WorkerInfo `json:"worker"`
}

// Lease grants one contiguous chunk-index range of one job to a worker
// until TTLSeconds elapse; renewals extend it, expiry requeues it.
type Lease struct {
	ID  string `json:"id"`
	Job string `json:"job"`
	// Spec is the full job request; the worker replays its prefix and
	// evaluates Range of the Total-sample terminal stage.
	Spec  jobs.Request     `json:"spec"`
	Range repro.ShardRange `json:"range"`
	Total int              `json:"total"`
	// TTLSeconds is the lease's time to live; renew at a fraction of it.
	TTLSeconds float64 `json:"ttl_seconds"`
	// NeedPrefix asks the worker to include the full prefix in its
	// upload (the coordinator does not have one for this job yet);
	// otherwise the digest alone suffices.
	NeedPrefix bool `json:"need_prefix,omitempty"`
}

// ResultUpload carries a completed range back to the coordinator.
type ResultUpload struct {
	// PrefixDigest is the worker's repro.Prefix digest; the coordinator
	// rejects (409) a partial whose prefix disagrees with the job's.
	PrefixDigest string `json:"prefix_digest"`
	// Prefix is included when the lease asked for it.
	Prefix *repro.Prefix `json:"prefix,omitempty"`
	// Chunks are the partial statistics of the leased range.
	Chunks []mc.Partial `json:"chunks,omitempty"`
}

// FailUpload reports that the worker could not complete its range.
type FailUpload struct {
	Error string `json:"error"`
}

// WorkerStatus is one worker's health record as served by
// GET /v1/dist/workers.
type WorkerStatus struct {
	ID    string `json:"id"`
	Cores int    `json:"cores,omitempty"`
	// LastSeen is the RFC 3339 time of the worker's last request.
	LastSeen string `json:"last_seen"`
	// Active is the number of leases the worker currently holds;
	// Completed, Failed and Expired count its finished leases; Samples
	// and Sims total the terminal-stage samples and transistor-level
	// simulations it has contributed.
	Active    int   `json:"active"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Expired   int64 `json:"expired"`
	Samples   int64 `json:"samples"`
	Sims      int64 `json:"sims"`
}
