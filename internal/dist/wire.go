// Package dist shards estimation jobs across worker nodes over a
// pull-based HTTP/JSON lease protocol, with the coordinator embedded in
// sramserverd and workers running sramworkerd.
//
// The protocol is built on the library's replicated-prefix seam
// (repro.EstimatePartial / repro.FoldPartials): every worker replays a
// job's deterministic first stage locally and evaluates only the
// contiguous chunk-index range it holds a lease on, streaming back the
// range's partial statistics. The coordinator folds the partials in
// strict chunk-index order, so the final Result — report included — is
// bit-identical to a single-node run of the same options. Worker loss
// is handled by lease expiry: an unrenewed lease returns its range to
// the queue and another worker picks it up; prefix digests cross-check
// that every contributor computed the same first stage.
//
// The protocol also carries the cluster observability plane. Every
// lease grants a trace context (trace id, parent span id, job, lease —
// the W3C traceparent decomposition) and the coordinator's wall clock;
// workers evaluate their range under that context, estimate their clock
// offset from poll/renew round trips (Cristian's algorithm, see
// telemetry.ClockSync) and upload finished span records with the
// partials, which the coordinator normalizes onto the job's own trace
// clock and grafts under the lease's span — one stitched Chrome trace
// per distributed job. Renewals double as the metrics-federation
// heartbeat: each carries the worker's registry snapshot and recent
// health alerts, which the coordinator republishes per-worker and
// aggregated at /metrics, GET /v1/cluster and the global event stream.
//
//	POST /v1/dist/poll               lease a range (204 when no work)
//	POST /v1/dist/leases/{id}/renew  extend a held lease (410 when lost)
//	POST /v1/dist/leases/{id}/result upload the range's partials + spans
//	POST /v1/dist/leases/{id}/fail   report a failed range
//	GET  /v1/dist/workers            registered workers and their health
//	GET  /v1/cluster                 fleet summary (workers, leases, rates)
package dist

import (
	"fmt"
	"math"

	"repro"
	"repro/internal/jobs"
	"repro/internal/mc"
	"repro/internal/telemetry"
)

// WorkerInfo identifies a polling worker.
type WorkerInfo struct {
	// ID names the worker; every poll from the same ID accrues to the
	// same health record and per-worker metrics.
	ID string `json:"id"`
	// Cores is the worker's evaluation-pool size (informational).
	Cores int `json:"cores,omitempty"`
}

// PollRequest asks the coordinator for work.
type PollRequest struct {
	Worker WorkerInfo `json:"worker"`
}

// TraceContext is the distributed trace context a lease carries — the
// W3C traceparent fields (trace id, parent span id) plus the job and
// lease ids that correlate spans, log records and events across the
// coordinator and every worker that touches the job.
type TraceContext struct {
	// TraceID is the job-scoped 16-byte lowercase-hex trace identifier.
	TraceID string `json:"trace_id"`
	// ParentSpanID identifies the coordinator's lease span (8-byte
	// lowercase hex); worker spans are stitched under it.
	ParentSpanID string `json:"parent_span_id"`
	// Job and Lease are the correlation ids for logs and events.
	Job   string `json:"job"`
	Lease string `json:"lease"`
}

// Traceparent renders the context in the W3C traceparent header format:
// version 00, sampled.
func (tc TraceContext) Traceparent() string {
	return fmt.Sprintf("00-%s-%s-01", tc.TraceID, tc.ParentSpanID)
}

// Lease grants one contiguous chunk-index range of one job to a worker
// until TTLSeconds elapse; renewals extend it, expiry requeues it.
type Lease struct {
	ID  string `json:"id"`
	Job string `json:"job"`
	// Spec is the full job request; the worker replays its prefix and
	// evaluates Range of the Total-sample terminal stage.
	Spec  jobs.Request     `json:"spec"`
	Range repro.ShardRange `json:"range"`
	Total int              `json:"total"`
	// TTLSeconds is the lease's time to live; renew at a fraction of it.
	TTLSeconds float64 `json:"ttl_seconds"`
	// NeedPrefix asks the worker to include the full prefix in its
	// upload (the coordinator does not have one for this job yet);
	// otherwise the digest alone suffices.
	NeedPrefix bool `json:"need_prefix,omitempty"`
	// Trace is the distributed trace context the worker evaluates under;
	// its uploaded spans stitch in below Trace.ParentSpanID.
	Trace TraceContext `json:"trace"`
	// CoordUnixUS is the coordinator's wall clock (microseconds since
	// the Unix epoch) when the lease was granted — one half of the
	// worker's round-trip clock-offset estimate.
	CoordUnixUS int64 `json:"coord_unix_us,omitempty"`
}

// RenewRequest is the renew POST body: the federation heartbeat. All
// fields are optional — an empty object is a plain renewal.
type RenewRequest struct {
	// Metrics is the worker's registry snapshot, sanitized for JSON with
	// WirePoints. The coordinator republishes it under the per-worker
	// metrics scope and folds it into the cluster aggregates.
	Metrics []telemetry.MetricPoint `json:"metrics,omitempty"`
	// Alerts are the worker's recent health.* watchdog alerts.
	Alerts []HealthAlert `json:"alerts,omitempty"`
}

// RenewResponse acknowledges a renewal.
type RenewResponse struct {
	TTLSeconds float64 `json:"ttl_seconds"`
	// CoordUnixUS is the coordinator's wall clock at the renewal —
	// another clock-offset sample for the worker.
	CoordUnixUS int64 `json:"coord_unix_us,omitempty"`
}

// HealthAlert is one worker watchdog alert on the wire.
type HealthAlert struct {
	Kind   string `json:"kind"`
	Detail string `json:"detail,omitempty"`
	// UnixUS is when the alert fired on the worker's clock; the
	// coordinator uses it to forward each alert to the global event
	// stream exactly once.
	UnixUS int64 `json:"unix_us,omitempty"`
}

// ResultUpload carries a completed range back to the coordinator.
type ResultUpload struct {
	// PrefixDigest is the worker's repro.Prefix digest; the coordinator
	// rejects (409) a partial whose prefix disagrees with the job's.
	PrefixDigest string `json:"prefix_digest"`
	// Prefix is included when the lease asked for it.
	Prefix *repro.Prefix `json:"prefix,omitempty"`
	// Chunks are the partial statistics of the leased range.
	Chunks []mc.Partial `json:"chunks,omitempty"`
	// Spans are the finished spans of the worker's lease evaluation, on
	// the worker's own trace clock. TraceStartUnixUS anchors that clock
	// to the worker's wall clock, and ClockOffsetUS/ClockRTTUS are the
	// worker's round-trip estimate of (coordinator wall − worker wall),
	// so the coordinator can place the spans on the job trace:
	//
	//	coord_trace_us = TraceStartUnixUS + ClockOffsetUS + span.StartUS
	//	               − job_trace_start_unix_us
	Spans            []telemetry.SpanSnapshot `json:"spans,omitempty"`
	TraceStartUnixUS int64                    `json:"trace_start_unix_us,omitempty"`
	ClockOffsetUS    int64                    `json:"clock_offset_us,omitempty"`
	ClockRTTUS       int64                    `json:"clock_rtt_us,omitempty"`
	// Metrics piggybacks a final registry snapshot on the upload, so
	// short leases that never renewed still federate their counters.
	Metrics []telemetry.MetricPoint `json:"metrics,omitempty"`
}

// FailUpload reports that the worker could not complete its range.
type FailUpload struct {
	Error string `json:"error"`
}

// WorkerStatus is one worker's health record as served by
// GET /v1/dist/workers and GET /v1/cluster.
type WorkerStatus struct {
	ID    string `json:"id"`
	Cores int    `json:"cores,omitempty"`
	// LastSeen is the RFC 3339 time of the worker's last request.
	LastSeen string `json:"last_seen"`
	// Active is the number of leases the worker currently holds;
	// Completed, Failed and Expired count its finished leases; Samples
	// and Sims total the terminal-stage samples and transistor-level
	// simulations it has contributed.
	Active    int   `json:"active"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Expired   int64 `json:"expired"`
	Samples   int64 `json:"samples"`
	Sims      int64 `json:"sims"`
	// SimsPerSec is the worker's self-reported live sampling rate (from
	// its progress gauge, via the federation heartbeat).
	SimsPerSec float64 `json:"sims_per_sec,omitempty"`
	// ClockOffsetUS/ClockRTTUS are the worker's last reported clock
	// offset estimate relative to the coordinator.
	ClockOffsetUS int64 `json:"clock_offset_us,omitempty"`
	ClockRTTUS    int64 `json:"clock_rtt_us,omitempty"`
	// Health lists the worker's recent watchdog alerts.
	Health []HealthAlert `json:"health,omitempty"`
}

// ClusterSummary is the fleet-level view served by GET /v1/cluster:
// per-worker status plus the folded totals the dashboard renders.
type ClusterSummary struct {
	Workers []WorkerStatus `json:"workers"`
	// ActiveLeases and PendingRanges describe work in flight; DistJobs
	// is the number of distributed jobs currently sharded.
	ActiveLeases  int `json:"active_leases"`
	PendingRanges int `json:"pending_ranges"`
	DistJobs      int `json:"dist_jobs"`
	// SimsPerSec is the fleet's folded live sampling rate (sum of the
	// workers' self-reported rates); Samples and Sims are lifetime
	// contribution totals.
	SimsPerSec float64 `json:"sims_per_sec"`
	Samples    int64   `json:"samples"`
	Sims       int64   `json:"sims"`
	// LeasesGranted/Completed/Expired/Failed are coordinator lifetime
	// counters.
	LeasesGranted   int64 `json:"leases_granted"`
	LeasesCompleted int64 `json:"leases_completed"`
	LeasesExpired   int64 `json:"leases_expired"`
	LeasesFailed    int64 `json:"leases_failed"`
	// GeneratedUnixUS timestamps the summary on the coordinator clock.
	GeneratedUnixUS int64 `json:"generated_unix_us"`
}

// WirePoints sanitizes a registry snapshot for the JSON wire: bucket
// arrays are dropped (quantiles travel instead — the overflow bucket's
// +Inf bound cannot be marshaled) and non-finite aggregates (the NaN
// quantiles and ±Inf extrema of an empty histogram) are zeroed. The
// input is not modified.
func WirePoints(points []telemetry.MetricPoint) []telemetry.MetricPoint {
	if len(points) == 0 {
		return nil
	}
	out := make([]telemetry.MetricPoint, 0, len(points))
	for _, p := range points {
		p.Buckets = nil
		p.Value = finite(p.Value)
		p.Sum = finite(p.Sum)
		p.Min = finite(p.Min)
		p.Max = finite(p.Max)
		p.P50 = finite(p.P50)
		p.P90 = finite(p.P90)
		p.P99 = finite(p.P99)
		out = append(out, p)
	}
	return out
}

func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}
