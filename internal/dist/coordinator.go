package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/jobs"
	"repro/internal/mc"
	"repro/internal/telemetry"
)

// Config configures a Coordinator. The zero value is usable.
type Config struct {
	// LeaseTTL is how long a granted lease lives without a renewal
	// (default 15s). Expired leases return their range to the queue.
	LeaseTTL time.Duration
	// MaxAttempts is how many times one range may fail or expire before
	// the whole job fails (default 3) — the backstop against a range
	// that kills every worker it lands on.
	MaxAttempts int
	// RangeTarget is the number of leases a job is split into (default
	// 16; the split is chunk-aligned, so small jobs yield fewer).
	RangeTarget int
	// Registry, when non-nil, receives coordinator metrics under scope
	// "dist", per-worker health under "dist_worker_<id>", and
	// dist.worker.* events on its bus.
	Registry *telemetry.Registry
}

// Coordinator owns the shard queue and lease table for distributed
// jobs. Plug its Run method into jobs.Config.Distributor and mount its
// Handler on the server mux; Stop it after the manager drains.
type Coordinator struct {
	cfg Config

	mu      sync.Mutex
	jobs    map[string]*shardJob
	order   []string // grant fairness: oldest submitted job first
	leases  map[string]*lease
	workers map[string]*workerState

	seq      atomic.Int64
	stop     chan struct{}
	stopOnce sync.Once
	swept    chan struct{}

	granted, completed, expired, failed *telemetry.Counter
	workersG, activeG, pendingG         *telemetry.Gauge
}

// shardJob is one distributed job's progress: the ranges still to
// lease, the agreed prefix, and the partials folded so far.
type shardJob struct {
	id        string
	job       *jobs.Job
	spec      jobs.Request
	total     int
	pending   []repro.ShardRange
	attempts  map[repro.ShardRange]int
	prefix    *repro.Prefix
	digest    string
	chunks    []mc.Partial
	remaining int
	err       error
	closed    bool
	done      chan struct{}
}

// lease is one granted range.
type lease struct {
	id      string
	jobID   string
	r       repro.ShardRange
	worker  string
	expires time.Time
}

// workerState is one worker's health record.
type workerState struct {
	WorkerInfo
	lastSeen                   time.Time
	active                     int
	completed, failed, expired int64
	samples, sims              int64
}

// NewCoordinator starts a coordinator (and its lease sweeper); call
// Stop to end it.
func NewCoordinator(cfg Config) *Coordinator {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 15 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.RangeTarget <= 0 {
		cfg.RangeTarget = 16
	}
	c := &Coordinator{
		cfg:     cfg,
		jobs:    make(map[string]*shardJob),
		leases:  make(map[string]*lease),
		workers: make(map[string]*workerState),
		stop:    make(chan struct{}),
		swept:   make(chan struct{}),
	}
	scope := cfg.Registry.Scope("dist")
	c.granted = scope.Counter("leases_granted_total")
	c.completed = scope.Counter("leases_completed_total")
	c.expired = scope.Counter("leases_expired_total")
	c.failed = scope.Counter("leases_failed_total")
	c.workersG = scope.Gauge("workers")
	c.activeG = scope.Gauge("active_leases")
	c.pendingG = scope.Gauge("pending_ranges")
	go c.sweep()
	return c
}

// Stop ends the lease sweeper. Outstanding Run calls should be gone
// first (the manager drains before the server shuts the coordinator).
func (c *Coordinator) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.swept
}

// Run executes one Distribute job: shard, wait for workers to lease and
// return every range, fold. It is the jobs.Config.Distributor hook —
// blocking, one call per job, cancelled by the job's own context. The
// folded Result is bit-identical to repro.EstimateContext on one node.
func (c *Coordinator) Run(ctx context.Context, job *jobs.Job) (*repro.Result, error) {
	spec := job.Request()
	opts := spec.Options()
	total, err := repro.ShardPlan(opts)
	if err != nil {
		return nil, err
	}
	ranges := repro.SplitRanges(total, c.cfg.RangeTarget, 0)
	sj := &shardJob{
		id: job.ID(), job: job, spec: spec, total: total,
		pending:   ranges,
		attempts:  make(map[repro.ShardRange]int),
		remaining: total,
		done:      make(chan struct{}),
	}
	c.mu.Lock()
	c.jobs[sj.id] = sj
	c.order = append(c.order, sj.id)
	c.gaugesLocked()
	c.mu.Unlock()
	job.Telemetry().Emit("dist.job.start", map[string]any{
		"job": sj.id, "total": total, "ranges": len(ranges),
	})
	start := time.Now()
	defer c.drop(sj)

	select {
	case <-sj.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	c.mu.Lock()
	err = sj.err
	prefix, chunks := sj.prefix, sj.chunks
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	res, foldErr := repro.FoldPartials(opts, *prefix, chunks, time.Since(start).Seconds())
	if foldErr != nil {
		return nil, foldErr
	}
	job.Telemetry().Emit("dist.job.done", map[string]any{
		"job": sj.id, "pf": res.Pf, "sims": res.TotalSims,
	})
	return res, nil
}

// drop forgets a finished job: its entry, queue position and any
// leases still pointing at it (their uploads will see 410).
func (c *Coordinator) drop(sj *shardJob) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.jobs, sj.id)
	for i, id := range c.order {
		if id == sj.id {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	for id, l := range c.leases {
		if l.jobID == sj.id {
			if ws := c.workers[l.worker]; ws != nil {
				ws.active--
			}
			delete(c.leases, id)
		}
	}
	if !sj.closed {
		sj.closed = true
		close(sj.done)
	}
	c.gaugesLocked()
}

// finishLocked fails a job; callers hold c.mu.
func (c *Coordinator) finishLocked(sj *shardJob, err error) {
	if sj.closed {
		return
	}
	sj.err = err
	sj.closed = true
	close(sj.done)
}

// requeueLocked returns a range to its job's queue after a failure or
// expiry, failing the job once the range has burned MaxAttempts tries.
func (c *Coordinator) requeueLocked(sj *shardJob, r repro.ShardRange, reason string) {
	sj.attempts[r]++
	if sj.attempts[r] >= c.cfg.MaxAttempts {
		c.finishLocked(sj, fmt.Errorf("dist: range [%d,%d) failed %d times (last: %s)",
			r.Lo, r.Hi, sj.attempts[r], reason))
		return
	}
	sj.pending = append(sj.pending, r)
}

// touchWorkerLocked updates (or creates) a worker's health record.
func (c *Coordinator) touchWorkerLocked(info WorkerInfo) *workerState {
	ws := c.workers[info.ID]
	if ws == nil {
		ws = &workerState{WorkerInfo: info}
		c.workers[info.ID] = ws
		c.cfg.Registry.Emit("dist.worker.joined", map[string]any{
			"worker": info.ID, "cores": info.Cores,
		})
	}
	if info.Cores > 0 {
		ws.Cores = info.Cores
	}
	ws.lastSeen = time.Now()
	return ws
}

// gaugesLocked refreshes the dist scope gauges; callers hold c.mu.
func (c *Coordinator) gaugesLocked() {
	c.workersG.Set(float64(len(c.workers)))
	c.activeG.Set(float64(len(c.leases)))
	pending := 0
	for _, sj := range c.jobs {
		pending += len(sj.pending)
	}
	c.pendingG.Set(float64(pending))
}

// workerScope returns the per-worker metrics scope.
func (c *Coordinator) workerScope(id string) *telemetry.Scope {
	return c.cfg.Registry.Scope("dist_worker_" + id)
}

// sweep expires unrenewed leases, requeueing their ranges.
func (c *Coordinator) sweep() {
	defer close(c.swept)
	period := max(c.cfg.LeaseTTL/4, 25*time.Millisecond)
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case now := <-ticker.C:
			c.sweepOnce(now)
		}
	}
}

func (c *Coordinator) sweepOnce(now time.Time) {
	type expiry struct {
		jobReg *telemetry.Registry
		fields map[string]any
	}
	var fired []expiry
	c.mu.Lock()
	for id, l := range c.leases {
		if !l.expires.Before(now) {
			continue
		}
		delete(c.leases, id)
		c.expired.Inc()
		if ws := c.workers[l.worker]; ws != nil {
			ws.active--
			ws.expired++
			c.workerScope(l.worker).Counter("leases_expired_total").Inc()
		}
		sj := c.jobs[l.jobID]
		if sj == nil {
			continue
		}
		c.requeueLocked(sj, l.r, "lease expired on worker "+l.worker)
		fired = append(fired, expiry{sj.job.Telemetry(), map[string]any{
			"job": l.jobID, "lease": id, "worker": l.worker,
			"lo": l.r.Lo, "hi": l.r.Hi,
		}})
	}
	c.gaugesLocked()
	c.mu.Unlock()
	for _, e := range fired {
		e.jobReg.Emit("dist.lease.expired", e.fields)
	}
}

// Handler serves the worker protocol; mount it at /v1/dist/ on the
// server mux.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/dist/poll", c.handlePoll)
	mux.HandleFunc("POST /v1/dist/leases/{id}/renew", c.handleRenew)
	mux.HandleFunc("POST /v1/dist/leases/{id}/result", c.handleResult)
	mux.HandleFunc("POST /v1/dist/leases/{id}/fail", c.handleFail)
	mux.HandleFunc("GET /v1/dist/workers", c.handleWorkers)
	return mux
}

func (c *Coordinator) handlePoll(w http.ResponseWriter, r *http.Request) {
	var req PollRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Worker.ID == "" {
		writeProblem(w, http.StatusBadRequest, "invalid-request", "dist: poll needs a worker id")
		return
	}
	var out *Lease
	var jobReg *telemetry.Registry
	c.mu.Lock()
	ws := c.touchWorkerLocked(req.Worker)
	for _, id := range c.order {
		sj := c.jobs[id]
		if sj == nil || sj.closed || len(sj.pending) == 0 {
			continue
		}
		rg := sj.pending[0]
		sj.pending = sj.pending[1:]
		l := &lease{
			id:    fmt.Sprintf("l%06d", c.seq.Add(1)),
			jobID: id, r: rg, worker: ws.ID,
			expires: time.Now().Add(c.cfg.LeaseTTL),
		}
		c.leases[l.id] = l
		ws.active++
		c.granted.Inc()
		out = &Lease{
			ID: l.id, Job: id, Spec: sj.spec, Range: rg, Total: sj.total,
			TTLSeconds: c.cfg.LeaseTTL.Seconds(),
			NeedPrefix: sj.prefix == nil,
		}
		jobReg = sj.job.Telemetry()
		break
	}
	c.gaugesLocked()
	c.mu.Unlock()
	if out == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	jobReg.Emit("dist.lease.granted", map[string]any{
		"job": out.Job, "lease": out.ID, "worker": req.Worker.ID,
		"lo": out.Range.Lo, "hi": out.Range.Hi,
	})
	writeJSON(w, http.StatusOK, out)
}

func (c *Coordinator) handleRenew(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	c.mu.Lock()
	l := c.leases[id]
	if l != nil {
		l.expires = time.Now().Add(c.cfg.LeaseTTL)
		if ws := c.workers[l.worker]; ws != nil {
			ws.lastSeen = time.Now()
		}
	}
	c.mu.Unlock()
	if l == nil {
		writeProblem(w, http.StatusGone, "lease-lost", "dist: lease "+id+" is no longer held")
		return
	}
	writeJSON(w, http.StatusOK, map[string]float64{"ttl_seconds": c.cfg.LeaseTTL.Seconds()})
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var up ResultUpload
	if err := json.NewDecoder(r.Body).Decode(&up); err != nil {
		writeProblem(w, http.StatusBadRequest, "invalid-request", "dist: bad result upload: "+err.Error())
		return
	}
	c.mu.Lock()
	l := c.leases[id]
	if l == nil {
		c.mu.Unlock()
		writeProblem(w, http.StatusGone, "lease-lost", "dist: lease "+id+" is no longer held")
		return
	}
	delete(c.leases, id)
	ws := c.workers[l.worker]
	sj := c.jobs[l.jobID]
	if sj == nil || sj.closed {
		if ws != nil {
			ws.active--
		}
		c.gaugesLocked()
		c.mu.Unlock()
		writeProblem(w, http.StatusGone, "lease-lost", "dist: job "+l.jobID+" is no longer running")
		return
	}
	if sj.digest == "" {
		// First result fixes the job's prefix; the upload must carry it,
		// and the digest must be the prefix's own.
		switch {
		case up.Prefix == nil:
			c.rejectLocked(w, sj, l, ws, http.StatusBadRequest, "invalid-request", "dist: first result must include the prefix")
			return
		case up.Prefix.Digest() != up.PrefixDigest:
			c.rejectLocked(w, sj, l, ws, http.StatusBadRequest, "invalid-request", "dist: uploaded prefix does not match its claimed digest")
			return
		}
		sj.prefix = up.Prefix
		sj.digest = up.PrefixDigest
	} else if up.PrefixDigest != sj.digest {
		// A worker that replayed a different first stage (version skew,
		// nondeterministic metric) must not contribute partials.
		c.rejectLocked(w, sj, l, ws, http.StatusConflict, "prefix-mismatch",
			fmt.Sprintf("dist: worker %s prefix digest %.12s… differs from job's %.12s…", l.worker, up.PrefixDigest, sj.digest))
		return
	}
	if sj.prefix.Final == nil {
		covered := 0
		for _, ch := range up.Chunks {
			if ch.Start < l.r.Lo || ch.Start+ch.Count > l.r.Hi {
				c.rejectLocked(w, sj, l, ws, http.StatusBadRequest, "invalid-request",
					fmt.Sprintf("dist: chunk [%d,%d) outside leased [%d,%d)", ch.Start, ch.Start+ch.Count, l.r.Lo, l.r.Hi))
				return
			}
			covered += ch.Count
		}
		if covered != l.r.Count() {
			c.rejectLocked(w, sj, l, ws, http.StatusBadRequest, "invalid-request",
				fmt.Sprintf("dist: upload covers %d of %d leased samples", covered, l.r.Count()))
			return
		}
	}
	var sims int64
	for _, ch := range up.Chunks {
		sims += ch.Sims
	}
	if ws != nil {
		ws.active--
		ws.completed++
		ws.samples += int64(l.r.Count())
		ws.sims += sims
		s := c.workerScope(l.worker)
		s.Counter("leases_completed_total").Inc()
		s.Counter("samples_total").Add(int64(l.r.Count()))
		s.Counter("sims_total").Add(sims)
	}
	sj.chunks = append(sj.chunks, up.Chunks...)
	sj.remaining -= l.r.Count()
	c.completed.Inc()
	finished := sj.remaining == 0
	if finished && !sj.closed {
		sj.closed = true
		close(sj.done)
	}
	jobReg := sj.job.Telemetry()
	c.gaugesLocked()
	c.mu.Unlock()
	jobReg.Emit("dist.lease.result", map[string]any{
		"job": l.jobID, "lease": id, "worker": l.worker,
		"lo": l.r.Lo, "hi": l.r.Hi, "sims": sims, "complete": finished,
	})
	writeJSON(w, http.StatusOK, map[string]bool{"accepted": true})
}

// rejectLocked refuses a lease's upload: the range goes back to the
// queue (attempt counted) and the caller's problem is written. Callers
// hold c.mu, which is released here.
func (c *Coordinator) rejectLocked(w http.ResponseWriter, sj *shardJob, l *lease, ws *workerState, status int, slug, detail string) {
	if ws != nil {
		ws.active--
		ws.failed++
		c.workerScope(l.worker).Counter("leases_failed_total").Inc()
	}
	c.failed.Inc()
	c.requeueLocked(sj, l.r, detail)
	c.gaugesLocked()
	c.mu.Unlock()
	writeProblem(w, status, slug, detail)
}

func (c *Coordinator) handleFail(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var up FailUpload
	if err := json.NewDecoder(r.Body).Decode(&up); err != nil {
		writeProblem(w, http.StatusBadRequest, "invalid-request", "dist: bad fail upload: "+err.Error())
		return
	}
	c.mu.Lock()
	l := c.leases[id]
	if l == nil {
		c.mu.Unlock()
		writeProblem(w, http.StatusGone, "lease-lost", "dist: lease "+id+" is no longer held")
		return
	}
	delete(c.leases, id)
	sj := c.jobs[l.jobID]
	ws := c.workers[l.worker]
	if ws != nil {
		ws.active--
		ws.failed++
		c.workerScope(l.worker).Counter("leases_failed_total").Inc()
	}
	if sj != nil && !sj.closed {
		c.failed.Inc()
		c.requeueLocked(sj, l.r, "worker "+l.worker+" reported: "+up.Error)
	}
	c.gaugesLocked()
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]bool{"accepted": true})
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	out := make([]WorkerStatus, 0, len(c.workers))
	for _, ws := range c.workers {
		out = append(out, WorkerStatus{
			ID: ws.ID, Cores: ws.Cores,
			LastSeen:  ws.lastSeen.UTC().Format(time.RFC3339Nano),
			Active:    ws.active,
			Completed: ws.completed, Failed: ws.failed, Expired: ws.expired,
			Samples: ws.samples, Sims: ws.sims,
		})
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, out)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeProblem(w http.ResponseWriter, status int, slug, detail string) {
	p := &jobs.Problem{
		Type: jobs.ProblemType + slug, Title: http.StatusText(status),
		Status: status, Detail: detail,
	}
	w.Header().Set("Content-Type", "application/problem+json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(p)
}
