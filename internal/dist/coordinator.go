package dist

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/jobs"
	"repro/internal/mc"
	"repro/internal/obslog"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Config configures a Coordinator. The zero value is usable.
type Config struct {
	// LeaseTTL is how long a granted lease lives without a renewal
	// (default 15s). Expired leases return their range to the queue.
	LeaseTTL time.Duration
	// MaxAttempts is how many times one range may fail or expire before
	// the whole job fails (default 3) — the backstop against a range
	// that kills every worker it lands on.
	MaxAttempts int
	// RangeTarget is the number of leases a job is split into (default
	// 16; the split is chunk-aligned, so small jobs yield fewer).
	RangeTarget int
	// Registry, when non-nil, receives coordinator metrics under scope
	// "dist", per-worker health and federated worker metrics under
	// "dist_worker_<id>", cluster aggregates under "cluster", and
	// dist.worker.* / worker.health.* events on its bus.
	Registry *telemetry.Registry
	// Log, when non-nil, receives structured records for the lease
	// lifecycle, carrying job/lease/worker/trace correlation fields.
	Log *obslog.Logger
}

// Coordinator owns the shard queue and lease table for distributed
// jobs. Plug its Run method into jobs.Config.Distributor and mount its
// Handler on the server mux; Stop it after the manager drains.
type Coordinator struct {
	cfg Config
	log *obslog.Logger

	mu      sync.Mutex
	jobs    map[string]*shardJob    // guarded by mu
	order   []string                // grant fairness: oldest submitted job first; guarded by mu
	leases  map[string]*lease       // guarded by mu
	workers map[string]*workerState // guarded by mu

	seq      atomic.Int64
	stop     chan struct{}
	stopOnce sync.Once
	swept    chan struct{}

	granted, completed, expired, failed *telemetry.Counter
	workersG, activeG, pendingG         *telemetry.Gauge
}

// shardJob is one distributed job's progress: the ranges still to
// lease, the agreed prefix, and the partials folded so far.
type shardJob struct {
	id        string
	job       *jobs.Job
	spec      jobs.Request
	total     int
	pending   []repro.ShardRange
	attempts  map[repro.ShardRange]int
	prefix    *repro.Prefix
	digest    string
	chunks    []mc.Partial
	remaining int
	err       error
	closed    bool
	done      chan struct{}

	// traceID identifies the job's distributed trace; span is the
	// coordinator's "dist" span on the job trace, under which each
	// lease's span (and, below that, the worker's grafted spans) nests.
	traceID string
	span    *telemetry.Span
}

// lease is one granted range.
type lease struct {
	id      string
	jobID   string
	r       repro.ShardRange
	worker  string
	expires time.Time
	// span is the coordinator-side span covering the lease, from grant
	// to result/fail/expiry; the worker's uploaded spans graft under it.
	span *telemetry.Span
}

// workerState is one worker's health record and last federation report.
type workerState struct {
	WorkerInfo
	lastSeen                   time.Time
	active                     int
	completed, failed, expired int64
	samples, sims              int64

	// Federation state from the worker's renew/result heartbeats.
	points      []telemetry.MetricPoint
	simsPerSec  float64
	clockOffset int64
	clockRTT    int64
	health      []HealthAlert
	lastAlertUS int64
}

// NewCoordinator starts a coordinator (and its lease sweeper); call
// Stop to end it.
func NewCoordinator(cfg Config) *Coordinator {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 15 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.RangeTarget <= 0 {
		cfg.RangeTarget = 16
	}
	c := &Coordinator{
		cfg:     cfg,
		log:     cfg.Log.With("component", "dist"),
		jobs:    make(map[string]*shardJob),
		leases:  make(map[string]*lease),
		workers: make(map[string]*workerState),
		stop:    make(chan struct{}),
		swept:   make(chan struct{}),
	}
	scope := cfg.Registry.Scope(wire.ScopeDist)
	c.granted = scope.Counter("leases_granted_total")
	c.completed = scope.Counter("leases_completed_total")
	c.expired = scope.Counter("leases_expired_total")
	c.failed = scope.Counter("leases_failed_total")
	c.workersG = scope.Gauge("workers")
	c.activeG = scope.Gauge("active_leases")
	c.pendingG = scope.Gauge("pending_ranges")
	go c.sweep()
	return c
}

// Stop ends the lease sweeper. Outstanding Run calls should be gone
// first (the manager drains before the server shuts the coordinator).
func (c *Coordinator) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.swept
}

// traceIDFor derives the job's 16-byte trace id. Content-addressing it
// to the job id keeps it stable across coordinator restarts mid-job.
func traceIDFor(jobID string) string {
	sum := sha256.Sum256([]byte("repro-dist-trace:" + jobID))
	return hex.EncodeToString(sum[:16])
}

// spanIDHex renders a span id in the traceparent's 8-byte hex form.
func spanIDHex(id int64) string {
	return fmt.Sprintf("%016x", uint64(id))
}

// Run executes one Distribute job: shard, wait for workers to lease and
// return every range, fold. It is the jobs.Config.Distributor hook —
// blocking, one call per job, cancelled by the job's own context. The
// folded Result is bit-identical to repro.EstimateContext on one node.
func (c *Coordinator) Run(ctx context.Context, job *jobs.Job) (*repro.Result, error) {
	spec := job.Request()
	opts := spec.Options()
	total, err := repro.ShardPlan(opts)
	if err != nil {
		return nil, err
	}
	ranges := repro.SplitRanges(total, c.cfg.RangeTarget, 0)
	// The coordinator's half of the stitched trace: a "dist" root span
	// on the job's own trace, one child span per lease.
	_, distSpan := telemetry.StartSpan(ctx, job.Telemetry(), "dist")
	distSpan.SetAttr("ranges", len(ranges))
	distSpan.SetAttr("total", total)
	defer distSpan.End()
	sj := &shardJob{
		id: job.ID(), job: job, spec: spec, total: total,
		pending:   ranges,
		attempts:  make(map[repro.ShardRange]int),
		remaining: total,
		done:      make(chan struct{}),
		traceID:   traceIDFor(job.ID()),
		span:      distSpan,
	}
	distSpan.SetAttr("trace_id", sj.traceID)
	c.mu.Lock()
	c.jobs[sj.id] = sj
	c.order = append(c.order, sj.id)
	c.gaugesLocked()
	c.mu.Unlock()
	job.Telemetry().Emit(wire.EvDistJobStart, map[string]any{
		"job": sj.id, "total": total, "ranges": len(ranges), "trace": sj.traceID,
	})
	c.log.Info("distributed job sharded",
		"job", sj.id, "trace", sj.traceID, "total", total, "ranges", len(ranges))
	start := time.Now()
	defer c.drop(sj)

	select {
	case <-sj.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	c.mu.Lock()
	err = sj.err
	prefix, chunks := sj.prefix, sj.chunks
	c.mu.Unlock()
	if err != nil {
		c.log.Warn("distributed job failed", "job", sj.id, "trace", sj.traceID, "error", err.Error())
		return nil, err
	}
	res, foldErr := repro.FoldPartials(opts, *prefix, chunks, time.Since(start).Seconds())
	if foldErr != nil {
		return nil, foldErr
	}
	job.Telemetry().Emit(wire.EvDistJobDone, map[string]any{
		"job": sj.id, "pf": res.Pf, "sims": res.TotalSims,
	})
	c.log.Info("distributed job folded",
		"job", sj.id, "trace", sj.traceID, "pf", res.Pf, "sims", res.TotalSims,
		"elapsed_s", time.Since(start).Seconds())
	return res, nil
}

// drop forgets a finished job: its entry, queue position and any
// leases still pointing at it (their uploads will see 410).
func (c *Coordinator) drop(sj *shardJob) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.jobs, sj.id)
	for i, id := range c.order {
		if id == sj.id {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	for id, l := range c.leases {
		if l.jobID == sj.id {
			if ws := c.workers[l.worker]; ws != nil {
				ws.active--
			}
			endLeaseSpan(l, "orphaned")
			delete(c.leases, id)
		}
	}
	if !sj.closed {
		sj.closed = true
		close(sj.done)
	}
	c.gaugesLocked()
}

// endLeaseSpan closes a lease's coordinator-side span with its outcome.
func endLeaseSpan(l *lease, outcome string) {
	if outcome != "" {
		l.span.SetAttr("outcome", outcome)
	}
	l.span.End()
}

// finishLocked fails a job; callers hold c.mu.
func (c *Coordinator) finishLocked(sj *shardJob, err error) {
	if sj.closed {
		return
	}
	sj.err = err
	sj.closed = true
	close(sj.done)
}

// requeueLocked returns a range to its job's queue after a failure or
// expiry, failing the job once the range has burned MaxAttempts tries.
func (c *Coordinator) requeueLocked(sj *shardJob, r repro.ShardRange, reason string) {
	sj.attempts[r]++
	if sj.attempts[r] >= c.cfg.MaxAttempts {
		c.finishLocked(sj, fmt.Errorf("dist: range [%d,%d) failed %d times (last: %s)",
			r.Lo, r.Hi, sj.attempts[r], reason))
		return
	}
	sj.pending = append(sj.pending, r)
}

// touchWorkerLocked updates (or creates) a worker's health record.
func (c *Coordinator) touchWorkerLocked(info WorkerInfo) *workerState {
	ws := c.workers[info.ID]
	if ws == nil {
		ws = &workerState{WorkerInfo: info}
		c.workers[info.ID] = ws
		c.cfg.Registry.Emit(wire.EvDistWorkerJoined, map[string]any{
			"worker": info.ID, "cores": info.Cores,
		})
		c.log.Info("worker joined", "worker", info.ID, "cores", info.Cores)
	}
	if info.Cores > 0 {
		ws.Cores = info.Cores
	}
	ws.lastSeen = time.Now()
	return ws
}

// gaugesLocked refreshes the dist scope gauges; callers hold c.mu.
func (c *Coordinator) gaugesLocked() {
	c.workersG.Set(float64(len(c.workers)))
	c.activeG.Set(float64(len(c.leases)))
	pending := 0
	for _, sj := range c.jobs {
		pending += len(sj.pending)
	}
	c.pendingG.Set(float64(pending))
}

// workerScope returns the per-worker metrics scope.
func (c *Coordinator) workerScope(id string) *telemetry.Scope {
	return c.cfg.Registry.Scope(wire.ScopeDistWorkerPrefix + id)
}

// sortedWorkersLocked returns the worker records ordered by ID, so
// every federation fold and listing is deterministic. Callers hold c.mu.
func (c *Coordinator) sortedWorkersLocked() []*workerState {
	out := make([]*workerState, 0, len(c.workers))
	for _, ws := range c.workers {
		out = append(out, ws)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ingestReportLocked stores a worker's federation heartbeat (metrics
// snapshot and/or health alerts), republishes the metrics under the
// per-worker scope and refreshes the cluster aggregates. It returns the
// alerts not yet forwarded to the event stream (emit them after
// releasing c.mu). Callers hold c.mu.
func (c *Coordinator) ingestReportLocked(ws *workerState, points []telemetry.MetricPoint, alerts []HealthAlert) []HealthAlert {
	if len(points) > 0 {
		ws.points = points
		scope := c.workerScope(ws.ID)
		for _, p := range points {
			if p.Scope == wire.ScopeProgress && p.Name == "sims_per_sec" {
				ws.simsPerSec = p.Value
			}
			name := p.Scope + "_" + p.Name
			switch p.Kind {
			case "counter", "gauge":
				scope.Gauge(name).Set(p.Value)
			case "histogram":
				scope.Gauge(name + "_count").Set(float64(p.Count))
				if p.Count > 0 {
					scope.Gauge(name + "_p50").Set(p.P50)
					scope.Gauge(name + "_p99").Set(p.P99)
				}
			}
		}
		c.aggregateClusterLocked()
	}
	var fresh []HealthAlert
	if len(alerts) > 0 {
		ws.health = alerts
		last := ws.lastAlertUS
		for _, a := range alerts {
			if a.UnixUS > ws.lastAlertUS {
				fresh = append(fresh, a)
			}
			if a.UnixUS > last {
				last = a.UnixUS
			}
		}
		ws.lastAlertUS = last
	}
	return fresh
}

// aggregateClusterLocked folds the workers' reported counters into the
// "cluster" scope: every federated counter sums across workers into a
// gauge of the same scope_name, plus the fleet's folded sampling rate.
// Workers are folded in ID order so the float sums are deterministic.
// Callers hold c.mu.
func (c *Coordinator) aggregateClusterLocked() {
	scope := c.cfg.Registry.Scope(wire.ScopeCluster)
	sums := make(map[string]float64)
	var names []string
	rate := 0.0
	for _, ws := range c.sortedWorkersLocked() {
		rate += ws.simsPerSec
		for _, p := range ws.points {
			if p.Kind != "counter" {
				continue
			}
			name := p.Scope + "_" + p.Name
			if _, ok := sums[name]; !ok {
				names = append(names, name)
			}
			sums[name] += p.Value
		}
	}
	scope.Gauge("workers").Set(float64(len(c.workers)))
	scope.Gauge("sims_per_sec").Set(rate)
	for _, name := range names {
		scope.Gauge(name).Set(sums[name])
	}
}

// emitWorkerAlerts forwards a worker's fresh health alerts to the
// registry's event stream (the global SSE firehose) and the log.
func (c *Coordinator) emitWorkerAlerts(workerID string, fresh []HealthAlert) {
	for _, a := range fresh {
		c.cfg.Registry.Emit(wire.EvWorkerHealthPrefix+a.Kind, map[string]any{
			"worker": workerID, "kind": a.Kind, "detail": a.Detail,
		})
		c.log.Warn("worker health alert", "worker", workerID, "kind", a.Kind, "detail", a.Detail)
	}
}

// sweep expires unrenewed leases, requeueing their ranges.
func (c *Coordinator) sweep() {
	defer close(c.swept)
	period := max(c.cfg.LeaseTTL/4, 25*time.Millisecond)
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case now := <-ticker.C:
			c.sweepOnce(now)
		}
	}
}

func (c *Coordinator) sweepOnce(now time.Time) {
	type expiry struct {
		jobReg *telemetry.Registry
		fields map[string]any
	}
	var fired []expiry
	c.mu.Lock()
	for id, l := range c.leases {
		if !l.expires.Before(now) {
			continue
		}
		delete(c.leases, id)
		endLeaseSpan(l, "expired")
		c.expired.Inc()
		if ws := c.workers[l.worker]; ws != nil {
			ws.active--
			ws.expired++
			c.workerScope(l.worker).Counter("leases_expired_total").Inc()
		}
		sj := c.jobs[l.jobID]
		if sj == nil {
			continue
		}
		c.requeueLocked(sj, l.r, "lease expired on worker "+l.worker)
		fired = append(fired, expiry{sj.job.Telemetry(), map[string]any{
			"job": l.jobID, "lease": id, "worker": l.worker,
			"lo": l.r.Lo, "hi": l.r.Hi,
		}})
		c.log.Warn("lease expired", "job", l.jobID, "lease", id, "worker", l.worker,
			"lo", l.r.Lo, "hi", l.r.Hi)
	}
	c.gaugesLocked()
	c.mu.Unlock()
	for _, e := range fired {
		e.jobReg.Emit(wire.EvDistLeaseExpired, e.fields)
	}
}

// Handler serves the worker protocol and the fleet summary; mount it at
// /v1/dist/ (and /v1/cluster) on the server mux.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/dist/poll", c.handlePoll)
	mux.HandleFunc("POST /v1/dist/leases/{id}/renew", c.handleRenew)
	mux.HandleFunc("POST /v1/dist/leases/{id}/result", c.handleResult)
	mux.HandleFunc("POST /v1/dist/leases/{id}/fail", c.handleFail)
	mux.HandleFunc("GET /v1/dist/workers", c.handleWorkers)
	mux.HandleFunc("GET /v1/cluster", c.handleCluster)
	return mux
}

func (c *Coordinator) handlePoll(w http.ResponseWriter, r *http.Request) {
	var req PollRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Worker.ID == "" {
		writeProblem(w, http.StatusBadRequest, "invalid-request", "dist: poll needs a worker id")
		return
	}
	var out *Lease
	var jobReg *telemetry.Registry
	c.mu.Lock()
	ws := c.touchWorkerLocked(req.Worker)
	for _, id := range c.order {
		sj := c.jobs[id]
		if sj == nil || sj.closed || len(sj.pending) == 0 {
			continue
		}
		rg := sj.pending[0]
		sj.pending = sj.pending[1:]
		l := &lease{
			id:    fmt.Sprintf("l%06d", c.seq.Add(1)),
			jobID: id, r: rg, worker: ws.ID,
			expires: time.Now().Add(c.cfg.LeaseTTL),
		}
		// The lease's coordinator-side span: grant to completion. Worker
		// spans graft under it at result upload.
		l.span = sj.span.Child("lease")
		l.span.SetAttr("lease", l.id)
		l.span.SetAttr("worker", ws.ID)
		l.span.SetAttr("lo", rg.Lo)
		l.span.SetAttr("hi", rg.Hi)
		c.leases[l.id] = l
		ws.active++
		c.granted.Inc()
		out = &Lease{
			ID: l.id, Job: id, Spec: sj.spec, Range: rg, Total: sj.total,
			TTLSeconds: c.cfg.LeaseTTL.Seconds(),
			NeedPrefix: sj.prefix == nil,
			Trace: TraceContext{
				TraceID:      sj.traceID,
				ParentSpanID: spanIDHex(l.span.ID()),
				Job:          id,
				Lease:        l.id,
			},
			CoordUnixUS: time.Now().UnixMicro(),
		}
		jobReg = sj.job.Telemetry()
		break
	}
	c.gaugesLocked()
	c.mu.Unlock()
	if out == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	jobReg.Emit(wire.EvDistLeaseGranted, map[string]any{
		"job": out.Job, "lease": out.ID, "worker": req.Worker.ID,
		"lo": out.Range.Lo, "hi": out.Range.Hi,
	})
	c.log.Debug("lease granted", "job", out.Job, "lease", out.ID, "worker", req.Worker.ID,
		"trace", out.Trace.TraceID, "lo", out.Range.Lo, "hi", out.Range.Hi)
	writeJSON(w, http.StatusOK, out)
}

func (c *Coordinator) handleRenew(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// The renew body is the federation heartbeat; tolerate the empty
	// body older workers send.
	var req RenewRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeProblem(w, http.StatusBadRequest, "invalid-request", "dist: bad renew body: "+err.Error())
		return
	}
	var fresh []HealthAlert
	var workerID string
	c.mu.Lock()
	l := c.leases[id]
	if l != nil {
		l.expires = time.Now().Add(c.cfg.LeaseTTL)
		if ws := c.workers[l.worker]; ws != nil {
			ws.lastSeen = time.Now()
			fresh = c.ingestReportLocked(ws, req.Metrics, req.Alerts)
			workerID = ws.ID
		}
	}
	c.mu.Unlock()
	if l == nil {
		writeProblem(w, http.StatusGone, "lease-lost", "dist: lease "+id+" is no longer held")
		return
	}
	c.emitWorkerAlerts(workerID, fresh)
	writeJSON(w, http.StatusOK, RenewResponse{
		TTLSeconds:  c.cfg.LeaseTTL.Seconds(),
		CoordUnixUS: time.Now().UnixMicro(),
	})
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var up ResultUpload
	if err := json.NewDecoder(r.Body).Decode(&up); err != nil {
		writeProblem(w, http.StatusBadRequest, "invalid-request", "dist: bad result upload: "+err.Error())
		return
	}
	c.mu.Lock()
	l := c.leases[id]
	if l == nil {
		c.mu.Unlock()
		writeProblem(w, http.StatusGone, "lease-lost", "dist: lease "+id+" is no longer held")
		return
	}
	delete(c.leases, id)
	ws := c.workers[l.worker]
	sj := c.jobs[l.jobID]
	if sj == nil || sj.closed {
		if ws != nil {
			ws.active--
		}
		endLeaseSpan(l, "orphaned")
		c.gaugesLocked()
		c.mu.Unlock()
		writeProblem(w, http.StatusGone, "lease-lost", "dist: job "+l.jobID+" is no longer running")
		return
	}
	if sj.digest == "" {
		// First result fixes the job's prefix; the upload must carry it,
		// and the digest must be the prefix's own.
		switch {
		case up.Prefix == nil:
			c.rejectLocked(w, sj, l, ws, http.StatusBadRequest, "invalid-request", "dist: first result must include the prefix")
			return
		case up.Prefix.Digest() != up.PrefixDigest:
			c.rejectLocked(w, sj, l, ws, http.StatusBadRequest, "invalid-request", "dist: uploaded prefix does not match its claimed digest")
			return
		}
		sj.prefix = up.Prefix
		sj.digest = up.PrefixDigest
	} else if up.PrefixDigest != sj.digest {
		// A worker that replayed a different first stage (version skew,
		// nondeterministic metric) must not contribute partials.
		c.rejectLocked(w, sj, l, ws, http.StatusConflict, "prefix-mismatch",
			fmt.Sprintf("dist: worker %s prefix digest %.12s… differs from job's %.12s…", l.worker, up.PrefixDigest, sj.digest))
		return
	}
	if sj.prefix.Final == nil {
		covered := 0
		for _, ch := range up.Chunks {
			if ch.Start < l.r.Lo || ch.Start+ch.Count > l.r.Hi {
				c.rejectLocked(w, sj, l, ws, http.StatusBadRequest, "invalid-request",
					fmt.Sprintf("dist: chunk [%d,%d) outside leased [%d,%d)", ch.Start, ch.Start+ch.Count, l.r.Lo, l.r.Hi))
				return
			}
			covered += ch.Count
		}
		if covered != l.r.Count() {
			c.rejectLocked(w, sj, l, ws, http.StatusBadRequest, "invalid-request",
				fmt.Sprintf("dist: upload covers %d of %d leased samples", covered, l.r.Count()))
			return
		}
	}
	var sims int64
	for _, ch := range up.Chunks {
		sims += ch.Sims
	}
	var fresh []HealthAlert
	if ws != nil {
		ws.active--
		ws.completed++
		ws.samples += int64(l.r.Count())
		ws.sims += sims
		if up.TraceStartUnixUS != 0 {
			ws.clockOffset = up.ClockOffsetUS
			ws.clockRTT = up.ClockRTTUS
		}
		s := c.workerScope(l.worker)
		s.Counter("leases_completed_total").Inc()
		s.Counter("samples_total").Add(int64(l.r.Count()))
		s.Counter("sims_total").Add(sims)
		fresh = c.ingestReportLocked(ws, up.Metrics, nil)
	}
	sj.chunks = append(sj.chunks, up.Chunks...)
	sj.remaining -= l.r.Count()
	c.completed.Inc()
	finished := sj.remaining == 0
	if finished && !sj.closed {
		sj.closed = true
		close(sj.done)
	}
	jobReg := sj.job.Telemetry()
	c.gaugesLocked()
	c.mu.Unlock()
	l.span.SetAttr("sims", sims)
	endLeaseSpan(l, "completed")
	grafted := c.stitchSpans(jobReg.TraceData(), l, &up)
	c.emitWorkerAlerts(l.worker, fresh)
	jobReg.Emit(wire.EvDistLeaseResult, map[string]any{
		"job": l.jobID, "lease": id, "worker": l.worker,
		"lo": l.r.Lo, "hi": l.r.Hi, "sims": sims, "complete": finished,
	})
	c.log.Debug("lease result accepted", "job", l.jobID, "lease", id, "worker", l.worker,
		"sims", sims, "spans", grafted, "complete", finished)
	writeJSON(w, http.StatusOK, map[string]bool{"accepted": true})
}

// stitchSpans grafts a worker's uploaded spans into the job's trace
// under the finished lease span, converting the worker's trace clock to
// the job trace's: the worker anchors its trace start to its own wall
// clock (TraceStartUnixUS) and reports its round-trip offset estimate
// to the coordinator's wall clock, so
//
//	job_trace_us = TraceStartUnixUS + ClockOffsetUS + span.StartUS
//	             − job_trace_start_unix_us
//
// Graft then clamps every span into the lease span's own window, which
// bounds any residual clock-offset error by the lease's true lifetime
// and keeps the stitched trace monotonic. Returns the grafted count.
func (c *Coordinator) stitchSpans(trace *telemetry.Trace, l *lease, up *ResultUpload) int {
	if trace == nil || len(up.Spans) == 0 || up.TraceStartUnixUS == 0 {
		return 0
	}
	shift := up.TraceStartUnixUS + up.ClockOffsetUS - trace.StartUnixUS()
	shifted := make([]telemetry.SpanSnapshot, 0, len(up.Spans))
	for _, s := range up.Spans {
		attrs := make(map[string]any, len(s.Attrs)+2)
		for k, v := range s.Attrs {
			attrs[k] = v
		}
		attrs["worker"] = l.worker
		attrs["lease"] = l.id
		s.Attrs = attrs
		s.StartUS += shift
		shifted = append(shifted, s)
	}
	return trace.Graft(l.span, shifted, l.span.StartUS(), l.span.EndUS())
}

// rejectLocked refuses a lease's upload: the range goes back to the
// queue (attempt counted) and the caller's problem is written. Callers
// hold c.mu, which is released here.
func (c *Coordinator) rejectLocked(w http.ResponseWriter, sj *shardJob, l *lease, ws *workerState, status int, slug, detail string) {
	if ws != nil {
		ws.active--
		ws.failed++
		c.workerScope(l.worker).Counter("leases_failed_total").Inc()
	}
	c.failed.Inc()
	c.requeueLocked(sj, l.r, detail)
	c.gaugesLocked()
	c.mu.Unlock()
	endLeaseSpan(l, "rejected")
	c.log.Warn("lease upload rejected", "job", l.jobID, "lease", l.id, "worker", l.worker,
		"status", status, "detail", detail)
	writeProblem(w, status, slug, detail)
}

func (c *Coordinator) handleFail(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var up FailUpload
	if err := json.NewDecoder(r.Body).Decode(&up); err != nil {
		writeProblem(w, http.StatusBadRequest, "invalid-request", "dist: bad fail upload: "+err.Error())
		return
	}
	c.mu.Lock()
	l := c.leases[id]
	if l == nil {
		c.mu.Unlock()
		writeProblem(w, http.StatusGone, "lease-lost", "dist: lease "+id+" is no longer held")
		return
	}
	delete(c.leases, id)
	endLeaseSpan(l, "failed")
	sj := c.jobs[l.jobID]
	ws := c.workers[l.worker]
	if ws != nil {
		ws.active--
		ws.failed++
		c.workerScope(l.worker).Counter("leases_failed_total").Inc()
	}
	if sj != nil && !sj.closed {
		c.failed.Inc()
		c.requeueLocked(sj, l.r, "worker "+l.worker+" reported: "+up.Error)
	}
	c.gaugesLocked()
	c.mu.Unlock()
	c.log.Warn("lease failed", "job", l.jobID, "lease", id, "worker", l.worker, "error", up.Error)
	writeJSON(w, http.StatusOK, map[string]bool{"accepted": true})
}

// statusLocked renders one worker's wire status; callers hold c.mu.
func statusLocked(ws *workerState) WorkerStatus {
	return WorkerStatus{
		ID: ws.ID, Cores: ws.Cores,
		LastSeen:  ws.lastSeen.UTC().Format(time.RFC3339Nano),
		Active:    ws.active,
		Completed: ws.completed, Failed: ws.failed, Expired: ws.expired,
		Samples: ws.samples, Sims: ws.sims,
		SimsPerSec:    ws.simsPerSec,
		ClockOffsetUS: ws.clockOffset, ClockRTTUS: ws.clockRTT,
		Health: ws.health,
	}
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	out := make([]WorkerStatus, 0, len(c.workers))
	for _, ws := range c.sortedWorkersLocked() {
		out = append(out, statusLocked(ws))
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// Cluster returns the coordinator's current fleet summary — what
// GET /v1/cluster serves and the -watch-cluster dashboard renders.
func (c *Coordinator) Cluster() ClusterSummary {
	c.mu.Lock()
	defer c.mu.Unlock()
	sum := ClusterSummary{
		Workers:         make([]WorkerStatus, 0, len(c.workers)),
		ActiveLeases:    len(c.leases),
		DistJobs:        len(c.jobs),
		LeasesGranted:   c.granted.Value(),
		LeasesCompleted: c.completed.Value(),
		LeasesExpired:   c.expired.Value(),
		LeasesFailed:    c.failed.Value(),
		GeneratedUnixUS: time.Now().UnixMicro(),
	}
	for _, sj := range c.jobs {
		sum.PendingRanges += len(sj.pending)
	}
	for _, ws := range c.sortedWorkersLocked() {
		sum.Workers = append(sum.Workers, statusLocked(ws))
		sum.SimsPerSec += ws.simsPerSec
		sum.Samples += ws.samples
		sum.Sims += ws.sims
	}
	return sum
}

func (c *Coordinator) handleCluster(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Cluster())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeProblem(w http.ResponseWriter, status int, slug, detail string) {
	p := &jobs.Problem{
		Type: jobs.ProblemType + slug, Title: http.StatusText(status),
		Status: status, Detail: detail,
	}
	w.Header().Set("Content-Type", "application/problem+json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(p)
}
