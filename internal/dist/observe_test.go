package dist

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/telemetry"
)

// TestStitchedTrace runs a distributed job and checks the cluster-wide
// trace: the job trace carries the coordinator's "dist" root, one
// "lease" child per grant, and — grafted under each completed lease —
// the worker's own span tree, clock-normalized and clamped so the
// stitched trace stays monotonic.
func TestStitchedTrace(t *testing.T) {
	h := newHarness(t, Config{RangeTarget: 4, LeaseTTL: 5 * time.Second})
	h.startWorkers(t, 2)
	job := runDistributed(t, h, jobs.Request{Workload: "slow", Method: "g-s", Seed: 61, K: 200, N: 3000})

	snaps := job.Telemetry().TraceData().Snapshot()
	byID := map[int64]telemetry.SpanSnapshot{}
	var dist telemetry.SpanSnapshot
	var leases, workerRoots []telemetry.SpanSnapshot
	for _, s := range snaps {
		byID[s.ID] = s
		switch s.Name {
		case "dist":
			dist = s
		case "lease":
			leases = append(leases, s)
		case "worker.lease":
			workerRoots = append(workerRoots, s)
		}
	}
	if dist.ID == 0 {
		t.Fatal("job trace has no coordinator dist span")
	}
	if tid, _ := dist.Attrs["trace_id"].(string); tid != traceIDFor(job.ID()) {
		t.Fatalf("dist span trace_id = %v, want %s", dist.Attrs["trace_id"], traceIDFor(job.ID()))
	}
	if len(leases) == 0 {
		t.Fatal("job trace has no lease spans")
	}
	for _, l := range leases {
		if l.ParentID != dist.ID {
			t.Fatalf("lease span %d parented under %d, want dist %d", l.ID, l.ParentID, dist.ID)
		}
		if l.Running {
			t.Fatalf("lease span %d still running after the job finished", l.ID)
		}
		if _, ok := l.Attrs["worker"]; !ok {
			t.Fatalf("lease span missing worker attr: %v", l.Attrs)
		}
	}
	if len(workerRoots) == 0 {
		t.Fatal("no worker spans were grafted into the job trace")
	}
	seenWorkers := map[string]bool{}
	for _, wspan := range workerRoots {
		worker, _ := wspan.Attrs["worker"].(string)
		if worker == "" {
			t.Fatalf("grafted span missing worker tag: %v", wspan.Attrs)
		}
		seenWorkers[worker] = true
		if _, ok := wspan.Attrs["lease"].(string); !ok {
			t.Fatalf("grafted span missing lease tag: %v", wspan.Attrs)
		}
		if wspan.Running {
			t.Fatal("grafted worker span still marked running")
		}
		parent, ok := byID[wspan.ParentID]
		if !ok || parent.Name != "lease" {
			t.Fatalf("grafted worker span parented under %q, want a lease span", parent.Name)
		}
		// Monotonicity after clock normalization: the grafted span must
		// sit inside its enclosing lease span's window.
		if wspan.StartUS < parent.StartUS || wspan.StartUS+wspan.DurUS > parent.StartUS+parent.DurUS {
			t.Fatalf("grafted span [%d,%d] escapes lease window [%d,%d]",
				wspan.StartUS, wspan.StartUS+wspan.DurUS, parent.StartUS, parent.StartUS+parent.DurUS)
		}
	}
	if len(seenWorkers) == 0 {
		t.Fatal("no worker identities in the stitched trace")
	}

	// The jobs API serves the stitched result as one Chrome trace.
	resp, err := http.Get(h.srv.URL + "/v1/jobs/" + job.ID() + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var chrome struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&chrome); err != nil {
		t.Fatalf("trace endpoint not Chrome JSON: %v", err)
	}
	tagged := 0
	for _, ev := range chrome.TraceEvents {
		if w, _ := ev.Args["worker"].(string); w != "" {
			tagged++
		}
	}
	if tagged == 0 {
		t.Fatal("Chrome trace has no worker-tagged events")
	}
}

// TestClusterFederation checks the metrics-federation plane after a
// distributed run: GET /v1/cluster aggregates the fleet, the
// coordinator registry republishes worker snapshots under per-worker
// scopes, and cluster-level aggregates exist.
func TestClusterFederation(t *testing.T) {
	h := newHarness(t, Config{RangeTarget: 4})
	h.startWorkers(t, 2)
	runDistributed(t, h, jobs.Request{Workload: "lin", Method: "g-s", Seed: 62, K: 200, N: 2000})

	resp, err := http.Get(h.srv.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/cluster: status %d", resp.StatusCode)
	}
	var sum ClusterSummary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	if len(sum.Workers) != 2 {
		t.Fatalf("cluster reports %d workers, want 2", len(sum.Workers))
	}
	if sum.Samples != 2000 {
		t.Fatalf("cluster samples = %d, want 2000", sum.Samples)
	}
	if sum.LeasesCompleted == 0 || sum.LeasesGranted < sum.LeasesCompleted {
		t.Fatalf("lease counters inconsistent: granted %d completed %d",
			sum.LeasesGranted, sum.LeasesCompleted)
	}
	if sum.GeneratedUnixUS == 0 {
		t.Fatal("summary missing generation timestamp")
	}
	for i := 1; i < len(sum.Workers); i++ {
		if sum.Workers[i-1].ID >= sum.Workers[i].ID {
			t.Fatalf("workers not sorted by ID: %s before %s", sum.Workers[i-1].ID, sum.Workers[i].ID)
		}
	}
	for _, w := range sum.Workers {
		// Clock estimates come from same-host round trips here; a huge
		// offset means the normalization math regressed.
		if w.ClockOffsetUS > 10_000_000 || w.ClockOffsetUS < -10_000_000 {
			t.Fatalf("worker %s clock offset %dus implausible for same-host", w.ID, w.ClockOffsetUS)
		}
	}

	// Federated series: per-worker scopes plus cluster aggregates on the
	// coordinator registry.
	var perWorker, cluster bool
	for _, p := range h.reg.Snapshot() {
		if strings.HasPrefix(p.Scope, "dist_worker_w") {
			perWorker = true
		}
		if p.Scope == "cluster" && p.Name == "workers" && p.Value >= 2 {
			cluster = true
		}
	}
	if !perWorker {
		t.Fatal("no dist_worker_<id> series federated into the coordinator registry")
	}
	if !cluster {
		t.Fatal("cluster scope missing the workers gauge")
	}
}

// TestWorkerAlertForwarding checks the health plane: a health.* event on
// the worker's own bus rides the renewal heartbeat to the coordinator,
// lands in the worker's status record, and is forwarded to the global
// event stream exactly once despite being re-sent every heartbeat.
func TestWorkerAlertForwarding(t *testing.T) {
	// Short TTL → frequent renewals; slow workload → leases live long
	// enough to renew at least once.
	h := newHarness(t, Config{RangeTarget: 2, LeaseTTL: 60 * time.Millisecond, MaxAttempts: 10})
	h.reg.SetBus(telemetry.NewBus(512))
	coordSub := h.reg.Bus().Subscribe(256)
	defer coordSub.Close()

	wreg := telemetry.New()
	wreg.SetBus(telemetry.NewBus(64))
	ctx, cancel := context.WithCancel(context.Background())
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		RunWorker(ctx, WorkerConfig{
			Coordinator:  h.srv.URL,
			ID:           "alerty",
			Resolve:      testResolve,
			PollInterval: 2 * time.Millisecond,
			Registry:     wreg,
		})
	}()
	t.Cleanup(func() { cancel(); <-workerDone })

	// The worker registers on its first poll; once visible, its health
	// subscription is live and the synthetic alert cannot be missed.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("worker never registered")
		}
		registered := false
		for _, w := range workerStatuses(t, h) {
			registered = registered || w.ID == "alerty"
		}
		if registered {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	wreg.Emit("health.fake_storm", map[string]any{"kind": "fake_storm", "detail": "synthetic alert"})

	runDistributed(t, h, jobs.Request{Workload: "slow", Method: "g-s", Seed: 63, K: 200, N: 4000})

	var status WorkerStatus
	for _, w := range workerStatuses(t, h) {
		if w.ID == "alerty" {
			status = w
		}
	}
	if len(status.Health) == 0 || status.Health[len(status.Health)-1].Kind != "fake_storm" {
		t.Fatalf("worker status health = %+v, want the forwarded fake_storm alert", status.Health)
	}
	if status.Health[len(status.Health)-1].Detail != "synthetic alert" {
		t.Fatalf("alert detail lost: %+v", status.Health)
	}

	forwarded := 0
	for {
		select {
		case ev := <-coordSub.Events():
			if ev.Name == "worker.health.fake_storm" {
				forwarded++
				if w, _ := ev.Fields["worker"].(string); w != "alerty" {
					t.Fatalf("forwarded alert tagged %v, want alerty", ev.Fields["worker"])
				}
			}
			continue
		default:
		}
		break
	}
	if forwarded != 1 {
		t.Fatalf("alert forwarded %d times, want exactly once", forwarded)
	}
}
