// Package wire is the cluster wire-name registry: the single file
// (wirenames.go) where every telemetry event name, metric scope name,
// watchdog alert kind, and problem-URN slug is declared. These strings
// are protocol, not prose — coordinator and workers match on them
// across process boundaries, SSE clients and the fleet dashboard parse
// them, and DESIGN.md §15 freezes them. The wirestable analyzer
// (internal/lint) enforces that producers compose wire names only from
// the constants below, so a renamed event cannot silently strand every
// consumer on the old spelling.
//
// The package imports nothing and is imported by everything that
// speaks the wire format; add new names here, never inline.
package wire

// Telemetry event names (Registry.Emit / Bus.Publish / SSE stream).
const (
	// Estimator lifecycle, emitted by the root package.
	EvRunStart = "run.start"
	EvRunDone  = "run.done"

	// Job lifecycle, emitted by internal/jobs.
	EvJobSubmitted = "job.submitted"
	EvJobDone      = "job.done"

	// Live progress: one snapshot per stride from mc and gibbs.
	EvProgress = "progress"
	// Per-chain Gibbs mixing report (also the chain span name).
	EvGibbsChain = "gibbs.chain"

	// Two-stage flow phase markers, emitted by internal/gibbs.
	EvStage1Start      = "stage1.start"
	EvStage1StartPoint = "stage1.start_point"
	EvStage1Done       = "stage1.done"
	EvStage2Start      = "stage2.start"

	// SPICE solver fallbacks, emitted by internal/spice.
	EvSpiceUnconverged = "spice.unconverged"
	EvSpiceFallback    = "spice.fallback"

	// Estimator completion snapshot, emitted by internal/mc.
	EvEstimatorDone = "estimator.done"

	// Worker-side lease lifecycle, emitted by internal/dist workers.
	EvWorkerLeaseStart  = "worker.lease.start"
	EvWorkerLeaseDone   = "worker.lease.done"
	EvWorkerLeaseFailed = "worker.lease.failed"
	EvWorkerLeaseLost   = "worker.lease.lost"

	// Coordinator-side distribution lifecycle.
	EvDistJobStart     = "dist.job.start"
	EvDistJobDone      = "dist.job.done"
	EvDistWorkerJoined = "dist.worker.joined"
	EvDistLeaseExpired = "dist.lease.expired"
	EvDistLeaseGranted = "dist.lease.granted"
	EvDistLeaseResult  = "dist.lease.result"

	// Watchdog alerts: EvHealthPrefix + an Alert* kind below; the
	// coordinator re-publishes worker alerts under EvWorkerHealthPrefix.
	EvHealthPrefix       = "health."
	EvWorkerHealthPrefix = "worker.health."

	// SSE stream bookkeeping meta-events, emitted by internal/jobs.
	EvStreamGap     = "stream.gap"
	EvStreamDropped = "stream.dropped"
)

// Watchdog alert kinds (the suffix of EvHealthPrefix events and the
// per-kind health gauges).
const (
	AlertChainStalled    = "chain_stalled"
	AlertWeightBlowup    = "weight_blowup"
	AlertNewtonStorm     = "newton_storm"
	AlertExecutorStarved = "executor_starved"
)

// Metric scope names (Registry.Scope).
const (
	ScopeMC       = "mc"
	ScopeProgress = "progress"
	ScopeGibbs    = "gibbs"
	ScopeSpice    = "spice"
	ScopeJobs     = "jobs"
	ScopeHealth   = "health"
	ScopeWorker   = "worker"
	ScopeDist     = "dist"
	ScopeCluster  = "cluster"

	// Dynamic scopes: prefix + identifier chosen at runtime.
	ScopeJobPrefix        = "job_"
	ScopeDistWorkerPrefix = "dist_worker_"
)

// Problem URNs (RFC 9457 problem+json Type members, v1 jobs API).
const (
	ProblemURNPrefix = "urn:repro:problem:"

	ProblemQueueFull            = ProblemURNPrefix + "queue-full"
	ProblemDraining             = ProblemURNPrefix + "draining"
	ProblemNotFound             = ProblemURNPrefix + "not-found"
	ProblemIdempotencyConflict  = ProblemURNPrefix + "idempotency-conflict"
	ProblemDistributionDisabled = ProblemURNPrefix + "distribution-disabled"
	ProblemNotDistributable     = ProblemURNPrefix + "not-distributable"
	ProblemInvalidRequest       = ProblemURNPrefix + "invalid-request"
	ProblemInternal             = ProblemURNPrefix + "internal"
)
