// Package repro is the public API of the SRAM failure-rate prediction
// library, a from-scratch reproduction of "Efficient SRAM Failure Rate
// Prediction via Gibbs Sampling" (Dong & Li, DAC 2011; Sun, Feng, Dong &
// Li, IEEE TCAD 2012).
//
// The library estimates the extremely small failure probabilities
// (1e-8..1e-6) of SRAM cells under process variation with seven
// estimators:
//
//   - MC: brute-force Monte Carlo (the golden reference)
//   - MIS: mixture importance sampling (Kanj et al., DAC 2006)
//   - MNIS: minimum-norm importance sampling (Qazi et al., DATE 2010)
//   - G-C: the paper's Gibbs sampling in Cartesian coordinates
//   - G-S: the paper's Gibbs sampling in spherical coordinates
//   - Blockade: statistical blockade (Singhee & Rutenbar, DATE 2007)
//   - Subset: subset simulation (the sequential-sampling family)
//
// A performance metric is any Metric: a function over the normalized
// variation space (independent standard Normal coordinates) whose
// negative values mean failure. Built-in metrics cover a transistor-level
// simulated 6-T SRAM cell (read noise margin, write margin, read
// current); custom metrics plug in the same way (see examples/customcell).
//
// Basic use:
//
//	res, err := repro.Estimate(repro.ReadCurrentWorkload(), repro.Options{
//		Method: repro.GS, K: 1000, N: 10000, Seed: 1,
//	})
//	fmt.Println(res.Pf, res.RelErr99, res.TotalSims)
//
// Long-running estimations should use EstimateContext, the primary entry
// point: it accepts a context.Context for cancellation and deadlines,
// checked at evaluation-chunk granularity, and reports the partial
// simulation cost of a cancelled run. Estimate is a thin
// context.Background() wrapper around it.
package repro

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/baselines"
	"repro/internal/gibbs"
	"repro/internal/mc"
	"repro/internal/model"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Telemetry is the run-telemetry registry: counters, gauges and latency
// histograms from every layer (SPICE solver, evaluation pool, Gibbs
// chain), a structured JSONL event stream, and Prometheus text export.
// Attach one via Options.Telemetry; nil (the default) disables all
// instrumentation and estimators pay nothing. Telemetry only observes —
// estimates are bit-identical with it on or off.
type Telemetry = telemetry.Registry

// NewTelemetry creates an empty registry to pass in Options.Telemetry.
// Inspect it afterwards with Snapshot, WriteTable or WritePrometheus.
func NewTelemetry() *Telemetry { return telemetry.New() }

// Metric is the performance-margin abstraction shared by all estimators:
// Value(x) < 0 means the sample at normalized variation point x fails.
// Every Value call stands for one transistor-level simulation.
type Metric = mc.Metric

// MetricFunc adapts a plain function to Metric.
type MetricFunc = mc.MetricFunc

// TracePoint is a convergence snapshot (estimate and 99% relative error
// after n second-stage simulations).
type TracePoint = mc.TracePoint

// Method selects the estimation algorithm.
type Method string

// Available estimation methods.
const (
	// MC is brute-force Monte Carlo sampling of f(x).
	MC Method = "mc"
	// MIS is mixture importance sampling [8].
	MIS Method = "mis"
	// MNIS is minimum-norm importance sampling [14].
	MNIS Method = "mnis"
	// GC is the proposed Gibbs sampling in Cartesian coordinates.
	GC Method = "g-c"
	// GS is the proposed Gibbs sampling in spherical coordinates.
	GS Method = "g-s"
	// Blockade is statistical blockade (Singhee & Rutenbar, the paper's
	// reference [9]): a classifier filters a large Monte Carlo stream so
	// only near-tail candidates are simulated.
	Blockade Method = "blockade"
	// Subset is subset simulation, the sequential-sampling family of the
	// paper's reference [13]: a particle ladder of conditional
	// probabilities over descending margin levels.
	Subset Method = "subset"
)

// ErrUnknownMethod is reported (wrapped) when a Method is not one of the
// seven estimators; test with errors.Is.
var ErrUnknownMethod = errors.New("repro: unknown method")

// ErrInvalidOptions is reported (wrapped) by Options.Validate and the
// estimation entry points when an Options field is out of range; the
// wrapped error joins one field-level error per problem. Test with
// errors.Is.
var ErrInvalidOptions = errors.New("repro: invalid options")

// Methods lists every method in the paper's comparison order.
func Methods() []Method { return []Method{MIS, MNIS, GC, GS} }

// AllMethods lists every available estimator, including the golden MC
// reference and the extension baselines — the set the introspection
// endpoints of the estimation service expose.
func AllMethods() []Method { return []Method{MC, MIS, MNIS, GC, GS, Blockade, Subset} }

// String implements fmt.Stringer with the method's CLI/API spelling.
func (m Method) String() string { return string(m) }

// Valid reports whether m names one of the seven estimators.
func (m Method) Valid() bool {
	switch m {
	case MC, MIS, MNIS, GC, GS, Blockade, Subset:
		return true
	}
	return false
}

// Describe returns a one-line human description of the method (empty for
// invalid methods).
func (m Method) Describe() string {
	switch m {
	case MC:
		return "brute-force Monte Carlo (golden reference)"
	case MIS:
		return "mixture importance sampling (Kanj et al., DAC 2006)"
	case MNIS:
		return "minimum-norm importance sampling (Qazi et al., DATE 2010)"
	case GC:
		return "two-stage Gibbs sampling, Cartesian coordinates (the paper)"
	case GS:
		return "two-stage Gibbs sampling, spherical coordinates (the paper)"
	case Blockade:
		return "statistical blockade (Singhee & Rutenbar, DATE 2007)"
	case Subset:
		return "subset simulation (sequential-sampling family)"
	}
	return ""
}

// ParseMethod converts a string (as used on CLI flags) to a Method. The
// error wraps ErrUnknownMethod.
func ParseMethod(s string) (Method, error) {
	if m := Method(s); m.Valid() {
		return m, nil
	}
	return "", fmt.Errorf("%w %q (want mc, mis, mnis, g-c, g-s, blockade or subset)", ErrUnknownMethod, s)
}

// Options configures Estimate.
type Options struct {
	// Method selects the estimator (default GS).
	Method Method
	// K is the first-stage budget: Gibbs samples for G-C/G-S,
	// exploratory simulations for MIS, model-training simulations for
	// MNIS. Defaults: 1000 (G-C/G-S), 5000 (MIS), 1000 (MNIS).
	K int
	// N is the second-stage sample count (or the full budget for MC).
	// Default 10000.
	N int
	// Target, when positive, replaces the fixed N with a convergence
	// target: the second stage stops once the 99% relative error drops
	// below Target (N then acts as the cap).
	Target float64
	// Seed makes the run deterministic.
	Seed int64
	// TraceEvery records a convergence snapshot every so many
	// second-stage samples (0 disables).
	TraceEvery int
	// StartPoint optionally pins the Gibbs starting point, skipping the
	// Algorithm 4 model-based search (G-C/G-S only).
	StartPoint []float64
	// Quadratic selects a quadratic (instead of linear) response
	// surface for the starting-point search (G-C/G-S/MNIS).
	Quadratic bool
	// Mixture, when ≥ 2, fits a Gaussian mixture with that many
	// components as the second-stage distortion instead of a single
	// Normal (G-C/G-S only; the paper's §IV-C extension). Multi-lobe
	// failure regions need it; raise K when using it.
	Mixture int
	// Workers sizes the batch-evaluation pool shared by every method
	// (0 = GOMAXPROCS). Inherently sequential stages (the Gibbs chain,
	// the model-based starting-point search) stay on one goroutine; all
	// sampling stages fan out. Estimates are bit-identical for every
	// worker count — Workers trades wall-clock time only.
	Workers int
	// Telemetry, when non-nil, receives metrics and structured events
	// from every stage of the run (see Telemetry). When the metric
	// exposes SetTelemetry (the built-in SRAM workloads do), the registry
	// is threaded down into the transistor-level solver as well.
	Telemetry *Telemetry
}

// Result is the outcome of an estimation run.
type Result struct {
	// Pf is the estimated failure probability.
	Pf float64
	// StdErr is its standard error, and RelErr99 the paper's accuracy
	// metric: the 99% confidence half-width over the estimate.
	StdErr, RelErr99 float64
	// N is the number of second-stage samples consumed; Failures counts
	// how many fell in the failure region.
	N, Failures int
	// WeightESS is the Kish effective sample size of the second-stage
	// importance weights — a small value despite a tight CI flags a
	// distortion that misses part of the failure region.
	WeightESS float64
	// MaxWeight is the largest importance weight observed, and
	// TopWeights the largest few in descending order (importance-sampling
	// methods only) — the inputs to the report's weight-tail diagnostics.
	MaxWeight  float64
	TopWeights []float64
	// Stage1Sims, Stage2Sims and TotalSims report the cost in
	// transistor-level simulations, split the way the paper's tables
	// split them.
	Stage1Sims, Stage2Sims, TotalSims int64
	// Stage1Seconds and Stage2Seconds split the wall time the same way
	// (zero for methods without a stage split; no statistical meaning).
	Stage1Seconds, Stage2Seconds float64
	// GibbsSamples holds the first-stage samples for G-C/G-S (nil for
	// other methods) — the data behind the paper's scatter figures.
	GibbsSamples [][]float64
	// DistortionMean is the fitted mean of g^NOR (importance-sampling
	// methods only).
	DistortionMean []float64
	// Trace holds convergence snapshots if TraceEvery was set.
	Trace []TracePoint
	// Report is the statistical run-report: chain convergence,
	// weight health, cost split, and the paper-style figure of merit.
	// It is attached to every successful estimate (nil on aborts).
	Report *RunReport
}

// Validate checks every Options field and reports all problems at once:
// the returned error wraps ErrInvalidOptions and joins one field-level
// error per offense (errors.Join), so a caller — or an API client
// reading the message — sees the full list instead of the first hit.
// Zero values are always valid (they select defaults). A nil return
// means EstimateContext will accept the options.
func (o Options) Validate() error {
	var errs []error
	if o.Method != "" && !o.Method.Valid() {
		errs = append(errs, fmt.Errorf("Method: %w %q (want mc, mis, mnis, g-c, g-s, blockade or subset)", ErrUnknownMethod, string(o.Method)))
	}
	if o.K < 0 {
		errs = append(errs, fmt.Errorf("K: must be ≥ 0 (0 selects the method default), got %d", o.K))
	}
	if o.N < 0 {
		errs = append(errs, fmt.Errorf("N: must be ≥ 0 (0 selects the default), got %d", o.N))
	}
	if o.Target < 0 || math.IsNaN(o.Target) || math.IsInf(o.Target, 0) {
		errs = append(errs, fmt.Errorf("Target: must be a finite value ≥ 0 (0 disables the convergence target), got %v", o.Target))
	}
	if o.TraceEvery < 0 {
		errs = append(errs, fmt.Errorf("TraceEvery: must be ≥ 0 (0 disables tracing), got %d", o.TraceEvery))
	}
	if o.Workers < 0 {
		errs = append(errs, fmt.Errorf("Workers: must be ≥ 0 (0 selects GOMAXPROCS), got %d", o.Workers))
	}
	if o.Mixture < 0 {
		errs = append(errs, fmt.Errorf("Mixture: must be ≥ 0 (0 or 1 keeps the single-Normal fit), got %d", o.Mixture))
	}
	for i, v := range o.StartPoint {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			errs = append(errs, fmt.Errorf("StartPoint[%d]: must be finite, got %v", i, v))
		}
	}
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrInvalidOptions, errors.Join(errs...))
}

func (o Options) withDefaults() Options {
	if o.Method == "" {
		o.Method = GS
	}
	if o.K <= 0 {
		switch o.Method {
		case MIS:
			o.K = 5000
		default:
			o.K = 1000
		}
	}
	if o.N <= 0 {
		o.N = 10000
	}
	return o
}

// Canonical returns o with every zero-valued tuning field resolved to
// the default the estimator would actually run with (Method, K, N).
// Two option sets with equal Canonical forms describe the same
// estimation — the property content-addressed result caches key on.
func (o Options) Canonical() Options { return o.withDefaults() }

// Estimate runs the selected estimator on the metric and reports the
// failure probability with full cost accounting. It is a thin
// context.Background() wrapper around EstimateContext, kept as the
// convenience entry point for callers that never cancel.
func Estimate(metric Metric, opts Options) (*Result, error) {
	return EstimateContext(context.Background(), metric, opts)
}

// EstimateContext is the primary estimation entry point: it runs the
// selected estimator on the metric under ctx and reports the failure
// probability with full cost accounting.
//
// Cancellation is checked at evaluation-chunk granularity — between
// dispatched simulation chunks, between Gibbs-chain coordinate updates
// and between model-training simulations, never inside a hot sample
// loop — so a cancel or an expired deadline returns within one chunk
// with an error satisfying errors.Is(err, context.Canceled) (or
// context.DeadlineExceeded). On such an abort the returned *Result is
// non-nil with TotalSims set to the simulations actually consumed, so
// partial cost is never lost; every other field is zero. An uncancelled
// EstimateContext run is bit-identical to Estimate for every worker
// count.
//
// Invalid options are rejected up front with an error wrapping
// ErrInvalidOptions that lists every out-of-range field at once.
func EstimateContext(ctx context.Context, metric Metric, opts Options) (*Result, error) {
	if metric == nil {
		return nil, fmt.Errorf("%w: nil metric", ErrInvalidOptions)
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	o := opts.withDefaults()
	if o.Telemetry != nil {
		if tm, ok := metric.(interface{ SetTelemetry(*telemetry.Registry) }); ok {
			tm.SetTelemetry(o.Telemetry)
		}
		o.Telemetry.Emit(wire.EvRunStart, map[string]any{
			"method": string(o.Method), "k": o.K, "n": o.N, "target": o.Target,
			"seed": o.Seed, "workers": o.Workers, "dim": metric.Dim(),
		})
	}
	// Root span of the estimate pipeline: every stage below (Alg 4
	// search, Gibbs chain, fit, stage-2 IS) nests under it.
	ctx, span := telemetry.StartSpan(ctx, o.Telemetry, "estimate")
	defer span.End()
	span.SetAttr("method", string(o.Method))
	span.SetAttr("seed", o.Seed)
	span.SetAttr("dim", metric.Dim())
	counter := mc.NewCounter(metric)
	t0 := time.Now()
	res, err := estimate(ctx, counter, o)
	wall := time.Since(t0).Seconds()
	span.SetAttr("sims", counter.Count())
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		// Partial cost accounting: the estimate is gone but the
		// simulations were spent; report them.
		res = &Result{TotalSims: counter.Count()}
	}
	if err == nil && res != nil {
		res.Report = buildReport(res, o, wall)
	}
	if o.Telemetry != nil {
		if err != nil {
			o.Telemetry.Emit(wire.EvRunDone, map[string]any{
				"method": string(o.Method), "error": err.Error(),
			})
		} else {
			o.Telemetry.Emit(wire.EvRunDone, map[string]any{
				"method": string(o.Method), "pf": res.Pf, "relerr99": res.RelErr99,
				"n": res.N, "stage1_sims": res.Stage1Sims, "stage2_sims": res.Stage2Sims,
				"total_sims": res.TotalSims, "uptime_seconds": o.Telemetry.Uptime().Seconds(),
			})
		}
	}
	return res, err
}

// estimate dispatches to the selected method with o fully defaulted.
func estimate(ctx context.Context, counter *mc.Counter, o Options) (*Result, error) {
	rng := rand.New(rand.NewSource(o.Seed))
	trace := mc.TraceEvery(o.TraceEvery)

	switch o.Method {
	case MC:
		if o.Workers != 1 && o.TraceEvery == 0 {
			res, err := mc.ParallelMCContext(ctx, counter, o.N, o.Seed, o.Workers, o.Telemetry)
			if err != nil {
				return nil, err
			}
			return fromMC(res, counter), nil
		}
		res, err := mc.PlainMCContext(ctx, counter, o.N, rng, trace)
		if err != nil {
			return nil, err
		}
		return fromMC(res, counter), nil

	case MIS:
		mo := baselines.MISOptions{Stage1: o.K, N: o.N, TraceEvery: trace, Workers: o.Workers, Telemetry: o.Telemetry}
		var (
			res *baselines.Result
			err error
		)
		if o.Target > 0 {
			res, err = baselines.MISUntilContext(ctx, counter, mo, o.Target, minStage2, o.N, rng)
		} else {
			res, err = baselines.MISContext(ctx, counter, mo, rng)
		}
		if err != nil {
			return nil, err
		}
		return fromBaseline(res), nil

	case MNIS:
		mo := baselines.MNISOptions{
			Start: &model.StartOptions{TrainN: o.K, UseQuadratic: o.Quadratic},
			N:     o.N, TraceEvery: trace, Workers: o.Workers, Telemetry: o.Telemetry,
		}
		var (
			res *baselines.Result
			err error
		)
		if o.Target > 0 {
			res, err = baselines.MNISUntilContext(ctx, counter, mo, o.Target, minStage2, o.N, rng)
		} else {
			res, err = baselines.MNISContext(ctx, counter, mo, rng)
		}
		if err != nil {
			return nil, err
		}
		return fromBaseline(res), nil

	case Blockade:
		res, err := baselines.BlockadeContext(ctx, counter, baselines.BlockadeOptions{
			Train: o.K, N: o.N, Workers: o.Workers, Telemetry: o.Telemetry,
		}, rng)
		if err != nil {
			return nil, err
		}
		return &Result{
			Pf: res.Pf, StdErr: res.StdErr, RelErr99: res.RelErr99,
			N: res.N, Failures: res.Failures,
			Stage1Sims: res.TrainSims, Stage2Sims: res.TailSims,
			TotalSims: res.TrainSims + res.TailSims,
		}, nil

	case Subset:
		res, err := baselines.SubsetContext(ctx, counter, baselines.SubsetOptions{
			Particles: o.K, Workers: o.Workers, Telemetry: o.Telemetry,
		}, rng)
		if err != nil {
			return nil, err
		}
		return &Result{
			Pf: res.Pf, StdErr: res.StdErr, RelErr99: res.RelErr99,
			N: res.N, Stage2Sims: res.Sims, TotalSims: res.Sims,
		}, nil

	case GC, GS:
		coord := gibbs.Cartesian
		if o.Method == GS {
			coord = gibbs.Spherical
		}
		to := gibbs.TwoStageOptions{
			Coord: coord, K: o.K, N: o.N,
			Start:      &model.StartOptions{UseQuadratic: o.Quadratic},
			StartPoint: o.StartPoint,
			Mixture:    o.Mixture,
			TraceEvery: trace,
			Workers:    o.Workers,
			Telemetry:  o.Telemetry,
		}
		var (
			res *gibbs.TwoStageResult
			err error
		)
		if o.Target > 0 {
			res, err = gibbs.TwoStageUntilContext(ctx, counter, to, o.Target, minStage2, o.N, rng)
		} else {
			res, err = gibbs.TwoStageContext(ctx, counter, to, rng)
		}
		if err != nil {
			return nil, err
		}
		return fromGibbs(res), nil

	default:
		return nil, fmt.Errorf("%w %q", ErrUnknownMethod, string(o.Method))
	}
}

// minStage2 guards the until-target runs against declaring convergence
// from the first handful of weights.
const minStage2 = 500

func fromMC(res mc.Result, counter *mc.Counter) *Result {
	return &Result{
		Pf: res.Pf, StdErr: res.StdErr, RelErr99: res.RelErr99,
		N: res.N, Failures: res.Failures, WeightESS: res.WeightESS,
		MaxWeight: res.MaxWeight, TopWeights: res.TopWeights,
		Stage2Sims: int64(res.N), TotalSims: counter.Count(),
		Trace: res.Trace,
	}
}

func fromBaseline(res *baselines.Result) *Result {
	return &Result{
		Pf: res.Pf, StdErr: res.StdErr, RelErr99: res.RelErr99,
		N: res.N, Failures: res.Failures, WeightESS: res.WeightESS,
		MaxWeight: res.MaxWeight, TopWeights: res.TopWeights,
		Stage1Sims: res.Stage1Sims, Stage2Sims: res.Stage2Sims,
		TotalSims:      res.Stage1Sims + res.Stage2Sims,
		Stage1Seconds:  res.Stage1Seconds,
		Stage2Seconds:  res.Stage2Seconds,
		DistortionMean: res.Mean,
		Trace:          res.Trace,
	}
}

func fromGibbs(res *gibbs.TwoStageResult) *Result {
	return &Result{
		Pf: res.Pf, StdErr: res.StdErr, RelErr99: res.RelErr99,
		N: res.N, Failures: res.Failures, WeightESS: res.WeightESS,
		MaxWeight: res.MaxWeight, TopWeights: res.TopWeights,
		Stage1Sims: res.Stage1Sims, Stage2Sims: res.Stage2Sims,
		TotalSims:      res.Stage1Sims + res.Stage2Sims,
		Stage1Seconds:  res.Stage1Seconds,
		Stage2Seconds:  res.Stage2Seconds,
		GibbsSamples:   res.Samples,
		DistortionMean: res.GNor.Mean,
		Trace:          res.Trace,
	}
}
