package repro

import (
	"testing"

	"repro/internal/sram"
)

// scalarMetric hides the sram metric's ValueBatch fast path so the
// facade sees a plain scalar mc.Metric: evaluation then flows through
// the per-sample fallback inside the dispatcher instead of the batched
// SPICE kernel.
type scalarMetric struct{ m *sram.Metric }

func (s scalarMetric) Dim() int                  { return s.m.Dim() }
func (s scalarMetric) Value(x []float64) float64 { return s.m.Value(x) }

// TestMethodsBitIdenticalAcrossWorkersAndBatching is the end-to-end
// equivalence claim of the batched kernel: every estimation method, run
// on a real SPICE workload, must report bit-identical results at worker
// counts 1, 4 and 8 — and the same bits again when the batch kernel is
// hidden entirely and every sample is solved one at a time. The batch
// kernel is a pure throughput optimization; no published number may
// move.
func TestMethodsBitIdenticalAcrossWorkersAndBatching(t *testing.T) {
	metric := sram.ReadCurrentWorkload()
	for _, method := range AllMethods() {
		t.Run(string(method), func(t *testing.T) {
			t.Parallel()
			base := Options{Method: method, Seed: 42, K: 300, N: 1500}
			var ref *Result
			for _, w := range []int{1, 4, 8} {
				o := base
				o.Workers = w
				res, err := Estimate(metric, o)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if ref == nil {
					ref = res
					continue
				}
				compareResults(t, ref, res, "workers", w)
			}
			o := base
			o.Workers = 4
			res, err := Estimate(scalarMetric{metric}, o)
			if err != nil {
				t.Fatalf("scalar-only: %v", err)
			}
			compareResults(t, ref, res, "scalar-only workers", 4)
		})
	}
}

// compareResults requires exact (==) agreement on every published
// estimate and cost field.
func compareResults(t *testing.T, want, got *Result, label string, v int) {
	t.Helper()
	if got.Pf != want.Pf {
		t.Fatalf("%s=%d: Pf %v != %v", label, v, got.Pf, want.Pf)
	}
	if got.StdErr != want.StdErr {
		t.Fatalf("%s=%d: StdErr %v != %v", label, v, got.StdErr, want.StdErr)
	}
	if got.N != want.N || got.Failures != want.Failures {
		t.Fatalf("%s=%d: N/Failures %d/%d != %d/%d", label, v, got.N, got.Failures, want.N, want.Failures)
	}
	if got.TotalSims != want.TotalSims || got.Stage1Sims != want.Stage1Sims || got.Stage2Sims != want.Stage2Sims {
		t.Fatalf("%s=%d: sims %d/%d/%d != %d/%d/%d", label, v,
			got.TotalSims, got.Stage1Sims, got.Stage2Sims,
			want.TotalSims, want.Stage1Sims, want.Stage2Sims)
	}
}
