package repro

// One benchmark per table/figure of the paper (see DESIGN.md §4), plus
// the ablation benches for the design decisions DESIGN.md §5 calls out
// and microbenchmarks of the substrates. The experiment benches run
// budget-scaled versions of cmd/experiments (full-scale regeneration is
// `go run ./cmd/experiments all`); custom metrics report the estimated
// failure probability (Pf_e-7, in 1e-7 units) and the simulation cost
// (sims/op) next to wall-clock time.

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/baselines"
	"repro/internal/gibbs"
	"repro/internal/linalg"
	"repro/internal/mc"
	"repro/internal/model"
	"repro/internal/sram"
	"repro/internal/stat"
	"repro/internal/surrogate"
	"repro/internal/telemetry"
)

// benchMethod runs one scaled method configuration and reports Pf and
// simulation cost.
func benchMethod(b *testing.B, metric mc.Metric, method Method, k, n int) {
	b.Helper()
	var pf float64
	var sims int64
	for i := 0; i < b.N; i++ {
		counter := mc.NewCounter(metric)
		rng := rand.New(rand.NewSource(int64(i) + 1))
		switch method {
		case MIS:
			r, err := baselines.MIS(counter, baselines.MISOptions{Stage1: k, N: n}, rng)
			if err != nil {
				b.Fatal(err)
			}
			pf = r.Pf
		case MNIS:
			r, err := baselines.MNIS(counter, baselines.MNISOptions{
				Start: &model.StartOptions{TrainN: k}, N: n,
			}, rng)
			if err != nil {
				b.Fatal(err)
			}
			pf = r.Pf
		case GC, GS:
			coord := gibbs.Cartesian
			if method == GS {
				coord = gibbs.Spherical
			}
			r, err := gibbs.TwoStage(counter, gibbs.TwoStageOptions{
				Coord: coord, K: 1 << 20, Stage1Budget: int64(k), N: n,
			}, rng)
			if err != nil {
				b.Fatal(err)
			}
			pf = r.Pf
		}
		sims = counter.Count()
	}
	b.ReportMetric(pf*1e7, "Pf_e-7")
	b.ReportMetric(float64(sims), "sims/op")
}

// BenchmarkTable1 regenerates a budget-scaled Table I: cost to analyze
// the RNM and WNM workloads per method.
func BenchmarkTable1(b *testing.B) {
	workloads := map[string]mc.Metric{
		"RNM": sram.RNMWorkload(),
		"WNM": sram.WNMWorkload(),
	}
	for _, w := range []string{"RNM", "WNM"} {
		for _, m := range Methods() {
			b.Run(w+"/"+string(m), func(b *testing.B) {
				benchMethod(b, workloads[w], m, 600, 600)
			})
		}
	}
}

// BenchmarkTable2 regenerates a budget-scaled Table II on the dual
// read-current workload: the Pf_e-7 metric exposes the paper's
// divergence (G-S ≈ 16, G-C ≈ 8 — one lobe).
func BenchmarkTable2(b *testing.B) {
	metric := sram.DualReadCurrentWorkload()
	for _, m := range Methods() {
		b.Run(string(m), func(b *testing.B) {
			benchMethod(b, metric, m, 2000, 4000)
		})
	}
	// Brute force at full golden scale takes minutes; this sub-bench
	// measures raw Monte Carlo throughput (the denominator of every
	// speedup claim) rather than the estimate itself.
	b.Run("brute-force-mc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mc.ParallelMC(metric, 100000, int64(i)+1, 0); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(100000, "sims/op")
	})
}

// BenchmarkFig3 measures the 1-D spherical conditional sampling that
// Fig. 3 visualizes.
func BenchmarkFig3(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	alpha2 := 1.0
	for i := 0; i < b.N; i++ {
		a1 := stat.TruncNormSample(0, 8, rng.Float64())
		if _, err := gibbs.CartesianFromSpherical(1, []float64{a1, alpha2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6 regenerates budget-scaled Fig. 6 convergence runs
// (estimate vs stage-2 samples) for the RNM workload.
func BenchmarkFig6(b *testing.B) {
	metric := sram.RNMWorkload()
	for _, m := range Methods() {
		b.Run(string(m), func(b *testing.B) {
			benchMethod(b, metric, m, 600, 1000)
		})
	}
}

// BenchmarkFig7 measures the relative-error bookkeeping of the Fig. 7
// series (the estimator pipeline with tracing enabled).
func BenchmarkFig7(b *testing.B) {
	lin := &surrogate.Linear{W: []float64{1, 1}, B: 6}
	g, err := stat.NewMVNormal([]float64{3, 3}, linalg.Identity(2))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mc.ImportanceSample(mc.NewEvaluator(lin, 0), g, 1000, rng, mc.TraceEvery(100)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8to11 measures the scatter generation behind Figs. 8–11:
// fitting a distortion from Gibbs samples and drawing labeled samples.
func BenchmarkFig8to11(b *testing.B) {
	metric := sram.ReadCurrentWorkload()
	counter := mc.NewCounter(metric)
	rng := rand.New(rand.NewSource(1))
	res, err := gibbs.TwoStage(counter, gibbs.TwoStageOptions{
		Coord: gibbs.Spherical, K: 200, N: 10,
	}, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := res.GNor.Sample(rng)
		_ = metric.Value(x)
	}
}

// BenchmarkFig12 regenerates budget-scaled Fig. 12 runs (dual
// read-current convergence) for the two Gibbs variants.
func BenchmarkFig12(b *testing.B) {
	metric := sram.DualReadCurrentWorkload()
	for _, m := range []Method{GC, GS} {
		b.Run(string(m), func(b *testing.B) {
			benchMethod(b, metric, m, 1500, 2000)
		})
	}
}

// BenchmarkFig13 measures the failure-region grid scan of Fig. 13.
func BenchmarkFig13(b *testing.B) {
	metric := sram.DualReadCurrentWorkload()
	x := make([]float64, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x[0] = float64(i%20) * 0.4
		x[1] = float64((i/20)%20) * 0.4
		_ = metric.Value(x)
	}
}

// BenchmarkFig14 measures single Gibbs-chain coordinate updates from a
// fixed lobe start (the moves Fig. 14 illustrates).
func BenchmarkFig14(b *testing.B) {
	metric := sram.DualReadCurrentWorkload()
	start := []float64{0.3, 5.2}
	b.Run("G-C", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < b.N; i++ {
			if _, err := gibbs.CartesianChain(metric, start, 3, nil, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("G-S", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < b.N; i++ {
			if _, err := gibbs.SphericalChain(metric, start, 3, nil, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkAblationCovariance contrasts the full mean+covariance fit of
// Algorithm 5 (D2) against a mean-only distortion built from the same
// Gibbs samples, on the correlated custom-cell-style metric where the
// covariance carries the information.
func BenchmarkAblationCovariance(b *testing.B) {
	lin := &surrogate.Linear{W: []float64{1, 1, 1, 1}, B: 10} // strongly correlated optimum
	run := func(b *testing.B, meanOnly bool) {
		var pf float64
		var sims int64
		for i := 0; i < b.N; i++ {
			counter := mc.NewCounter(lin)
			rng := rand.New(rand.NewSource(int64(i) + 1))
			start, err := model.FindFailurePoint(counter, nil, rng)
			if err != nil {
				b.Fatal(err)
			}
			samples, err := gibbs.SphericalChain(counter, start, 400, nil, rng)
			if err != nil {
				b.Fatal(err)
			}
			var g *stat.MVNormal
			if meanOnly {
				mean, err := stat.MeanVec(samples)
				if err != nil {
					b.Fatal(err)
				}
				g, err = stat.NewMVNormal(mean, linalg.Identity(len(mean)))
				if err != nil {
					b.Fatal(err)
				}
			} else {
				g, err = gibbs.FitDistortion(samples)
				if err != nil {
					b.Fatal(err)
				}
			}
			r, err := mc.ImportanceSample(mc.NewEvaluator(counter, 0), g, 3000, rng, 0)
			if err != nil {
				b.Fatal(err)
			}
			pf = r.Pf
			sims = counter.Count()
			b.ReportMetric(100*r.RelErr99, "relerr_%")
		}
		b.ReportMetric(pf/lin.ExactPf(), "Pf_ratio")
		b.ReportMetric(float64(sims), "sims/op")
	}
	b.Run("mean+cov", func(b *testing.B) { run(b, false) })
	b.Run("mean-only", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationStart contrasts the Algorithm 4 model-based starting
// point (D3) with a naive random-direction failure search.
func BenchmarkAblationStart(b *testing.B) {
	lin := &surrogate.Linear{W: []float64{2, 1, -1}, B: 9}
	exact := lin.ExactPf()
	run := func(b *testing.B, modelBased bool) {
		var ratio float64
		var sims int64
		for i := 0; i < b.N; i++ {
			counter := mc.NewCounter(lin)
			rng := rand.New(rand.NewSource(int64(i) + 1))
			var start []float64
			var err error
			if modelBased {
				start, err = model.FindFailurePoint(counter, nil, rng)
			} else {
				// Naive: walk random directions until one fails.
				for {
					dir := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
					start, err = model.RefineAlongRay(counter, dir, 10, 8)
					if err == nil {
						break
					}
				}
			}
			if err != nil {
				b.Fatal(err)
			}
			res, err := gibbs.TwoStage(counter, gibbs.TwoStageOptions{
				Coord: gibbs.Spherical, K: 300, N: 2000, StartPoint: start,
			}, rng)
			if err != nil {
				b.Fatal(err)
			}
			ratio = res.Pf / exact
			sims = counter.Count()
		}
		b.ReportMetric(ratio, "Pf_ratio")
		b.ReportMetric(float64(sims), "sims/op")
	}
	b.Run("algorithm4", func(b *testing.B) { run(b, true) })
	b.Run("random-direction", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationBisections sweeps the per-boundary bisection budget of
// Algorithm 3 (D4): accuracy of the interval endpoints against chain
// cost.
func BenchmarkAblationBisections(b *testing.B) {
	sh := &surrogate.Shell{M: 3, R: 4}
	exact := sh.ExactPf()
	for _, bis := range []int{3, 6, 12} {
		b.Run(map[int]string{3: "bis3", 6: "bis6", 12: "bis12"}[bis], func(b *testing.B) {
			var ratio float64
			var sims int64
			for i := 0; i < b.N; i++ {
				counter := mc.NewCounter(sh)
				rng := rand.New(rand.NewSource(int64(i) + 1))
				res, err := gibbs.TwoStage(counter, gibbs.TwoStageOptions{
					Coord: gibbs.Spherical, K: 300, N: 2000,
					Chain: &gibbs.Options{Bisections: bis},
				}, rng)
				if err != nil {
					b.Fatal(err)
				}
				ratio = res.Pf / exact
				sims = counter.Count()
			}
			b.ReportMetric(ratio, "Pf_ratio")
			b.ReportMetric(float64(sims), "sims/op")
		})
	}
}

// BenchmarkAblationEpsilon sweeps the spherical-start ε of eq. (32)
// (D5); the paper recommends 1e-3..1e-2.
func BenchmarkAblationEpsilon(b *testing.B) {
	arc := &surrogate.Arc{R: 4.2, HalfAngle: 2.8}
	exact := arc.ExactPf()
	// A fixed in-region start isolates the ε effect from starting-point
	// search noise.
	start := []float64{4.4, 0}
	for _, eps := range []float64{1e-3, 1e-2, 1e-1} {
		b.Run(map[float64]string{1e-3: "eps1e-3", 1e-2: "eps1e-2", 1e-1: "eps1e-1"}[eps], func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				counter := mc.NewCounter(arc)
				rng := rand.New(rand.NewSource(int64(i) + 1))
				res, err := gibbs.TwoStage(counter, gibbs.TwoStageOptions{
					Coord: gibbs.Spherical, K: 400, N: 3000,
					StartPoint: start,
					Chain:      &gibbs.Options{Epsilon: eps},
				}, rng)
				if err != nil {
					b.Fatal(err)
				}
				ratio = res.Pf / exact
			}
			b.ReportMetric(ratio, "Pf_ratio")
		})
	}
}

// BenchmarkAblationCoord is the D1 headline: the two chains on the
// two-lobe workload, at identical budgets.
func BenchmarkAblationCoord(b *testing.B) {
	metric := sram.DualReadCurrentWorkload()
	for _, m := range []Method{GC, GS} {
		b.Run(string(m), func(b *testing.B) {
			benchMethod(b, metric, m, 1500, 3000)
		})
	}
}

// --- Evaluation-engine benches ---

// BenchmarkStage2Workers measures stage-2 importance sampling on a
// SPICE-backed metric across pool sizes. On a multicore machine the
// workers=4 sub-bench should run at least ~2× faster than workers=1
// (DC solves dominate and parallelize cleanly); the estimates are
// bit-identical regardless, so the sweep doubles as a determinism
// check under benchmark load.
func BenchmarkStage2Workers(b *testing.B) {
	metric := sram.ReadCurrentWorkload()
	counter := mc.NewCounter(metric)
	setup := rand.New(rand.NewSource(1))
	fit, err := gibbs.TwoStage(counter, gibbs.TwoStageOptions{
		Coord: gibbs.Spherical, K: 200, N: 10,
	}, setup)
	if err != nil {
		b.Fatal(err)
	}
	g := fit.GNor
	var refPf float64
	for _, workers := range []int{1, 2, 4, 0} {
		name := map[int]string{1: "workers1", 2: "workers2", 4: "workers4", 0: "workersAll"}[workers]
		b.Run(name, func(b *testing.B) {
			ev := mc.NewEvaluator(metric, workers)
			var pf float64
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(7))
				r, err := mc.ImportanceSample(ev, g, 2000, rng, 0)
				if err != nil {
					b.Fatal(err)
				}
				pf = r.Pf
			}
			if refPf == 0 {
				refPf = pf
			} else if pf != refPf {
				b.Fatalf("workers=%d changed the estimate: %v vs %v", workers, pf, refPf)
			}
			b.ReportMetric(pf*1e7, "Pf_e-7")
			b.ReportMetric(float64(2000*b.N)/b.Elapsed().Seconds(), "solves/sec")
		})
	}
}

// BenchmarkEvaluatorOverhead isolates the pool's scheduling cost on a
// near-free analytic metric — the worst case for parallel dispatch.
func BenchmarkEvaluatorOverhead(b *testing.B) {
	lin := &surrogate.Linear{W: []float64{1, 1}, B: 6}
	g, err := stat.NewMVNormal([]float64{3, 3}, linalg.Identity(2))
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		b.Run(map[int]string{1: "workers1", 4: "workers4"}[workers], func(b *testing.B) {
			ev := mc.NewEvaluator(lin, workers)
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < b.N; i++ {
				if _, err := mc.ImportanceSample(ev, g, 1000, rng, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTelemetryOverhead runs the same stage-2 importance sampling
// bare and with a live registry attached, on a near-free analytic metric
// so the atomic adds are the largest possible fraction of the work. The
// "bare" vs "instrumented" sub-bench ratio is the cost of leaving
// telemetry on; compare ns/op manually — CI only smoke-runs this
// (-benchtime 1x) and asserts the estimates match bit for bit, which is
// deterministic where a timing gate would be flaky.
func BenchmarkTelemetryOverhead(b *testing.B) {
	lin := &surrogate.Linear{W: []float64{1, 1}, B: 6}
	g, err := stat.NewMVNormal([]float64{3, 3}, linalg.Identity(2))
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, reg *telemetry.Registry) float64 {
		ev := mc.NewEvaluator(lin, 0).WithTelemetry(reg)
		var pf float64
		for i := 0; i < b.N; i++ {
			// Fresh seed each iteration so the final Pf is independent of
			// b.N and the bare/instrumented comparison below is exact.
			rng := rand.New(rand.NewSource(7))
			r, err := mc.ImportanceSample(ev, g, 1000, rng, 0)
			if err != nil {
				b.Fatal(err)
			}
			pf = r.Pf
		}
		return pf
	}
	var barePf, instPf float64
	b.Run("bare", func(b *testing.B) { barePf = run(b, nil) })
	b.Run("instrumented", func(b *testing.B) { instPf = run(b, telemetry.New()) })
	if barePf != instPf {
		b.Fatalf("telemetry changed the estimate: %v vs %v", instPf, barePf)
	}
}

// BenchmarkTraceOverhead prices the span-tracing layer on the two-stage
// flow. Three sub-benches: "disabled" (no registry at all — the span
// calls are nil no-ops), "registry" (live metrics, no trace), "traced"
// (full span tree recorded). Compare ns/op manually — disabled vs traced
// must stay within ~5%; CI smoke-runs this (-benchtime 1x) and asserts
// the estimates are bit-identical, which is deterministic where a timing
// gate would be flaky. The "span-disabled" sub-bench isolates one
// span start/attr/agg/end cycle against an enabled registry with no
// trace — it must report 0 allocs/op (the zero-cost-when-off claim).
func BenchmarkTraceOverhead(b *testing.B) {
	lin := &surrogate.Linear{W: []float64{1, 1}, B: 6}
	run := func(b *testing.B, mk func() *telemetry.Registry) float64 {
		var pf float64
		for i := 0; i < b.N; i++ {
			res, err := Estimate(lin, Options{Method: GS, K: 150, N: 1500, Seed: 7, Telemetry: mk()})
			if err != nil {
				b.Fatal(err)
			}
			pf = res.Pf
		}
		return pf
	}
	var bare, traced float64
	b.Run("disabled", func(b *testing.B) {
		bare = run(b, func() *telemetry.Registry { return nil })
	})
	b.Run("registry", func(b *testing.B) {
		run(b, telemetry.New)
	})
	b.Run("traced", func(b *testing.B) {
		traced = run(b, func() *telemetry.Registry {
			reg := telemetry.New()
			reg.SetTrace(telemetry.NewTrace())
			return reg
		})
	})
	if bare != traced {
		b.Fatalf("tracing changed the estimate: %v vs %v", traced, bare)
	}
	b.Run("span-disabled", func(b *testing.B) {
		reg := telemetry.New() // enabled registry, no trace attached
		ctx := context.Background()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			spanCtx, span := telemetry.StartSpan(ctx, reg, "bench")
			span.SetAttr("i", i)
			span.Agg("work").Add(1)
			_, child := telemetry.StartSpan(spanCtx, reg, "child")
			child.End()
			span.End()
		}
	})
}

// --- Substrate microbenchmarks ---

// BenchmarkSpiceOperatingPoint measures a single 6-T cell DC solve — the
// paper's unit of cost.
func BenchmarkSpiceOperatingPoint(b *testing.B) {
	cell := sram.Default90nm()
	var dvth [sram.NumTransistors]float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cell.ReadCurrent(dvth); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMetricRNM measures one full read-noise-margin extraction (two
// butterfly sweeps + eye geometry).
func BenchmarkMetricRNM(b *testing.B) {
	m := sram.RNMWorkload()
	x := make([]float64, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Value(x)
	}
}

// BenchmarkMetricWNM measures one write-trip bisection.
func BenchmarkMetricWNM(b *testing.B) {
	m := sram.WNMWorkload()
	x := make([]float64, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Value(x)
	}
}

// BenchmarkNormQuantile measures the inverse-transform primitive.
func BenchmarkNormQuantile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = stat.NormQuantile(float64(i%1000)/1000.0*0.999 + 0.0005)
	}
}

// BenchmarkChiQuantile measures the radius-conditional primitive.
func BenchmarkChiQuantile(b *testing.B) {
	c := stat.Chi{K: 6}
	for i := 0; i < b.N; i++ {
		_ = c.Quantile(float64(i%1000)/1000.0*0.999 + 0.0005)
	}
}

// BenchmarkGibbsSample measures the cost of one Gibbs coordinate update
// (bracketing + bisection + truncated draw) on a cheap analytic metric.
func BenchmarkGibbsSample(b *testing.B) {
	lin := &surrogate.Linear{W: []float64{1, 1}, B: 5}
	b.Run("cartesian", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < b.N; i++ {
			if _, err := gibbs.CartesianChain(lin, []float64{3, 3}, 1, nil, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("spherical", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < b.N; i++ {
			if _, err := gibbs.SphericalChain(lin, []float64{3, 3}, 1, nil, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
}
